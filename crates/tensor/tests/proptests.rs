//! Property-based tests for the dense tensor substrate.

use gtopk_tensor::{
    log_softmax_rows, matmul_at_flat_acc, matmul_bt_flat, matmul_flat, matmul_flat_acc, parallel,
    softmax_rows, Shape, Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-100.0f32..100.0, n)
        .prop_map(move |v| Tensor::from_vec(Shape::d1(n), v).expect("length matches"))
}

proptest! {
    /// (A·B)·C == A·(B·C) within f32 tolerance, for random small shapes.
    #[test]
    fn prop_matmul_associative(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, q in 1usize..5,
        seed in 0u64..50,
    ) {
        let fill = |len: usize, salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u64 + 1).wrapping_mul(seed + salt + 1)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    ((h >> 40) as f32 / (1u64 << 23) as f32) - 0.5
                })
                .collect()
        };
        let a = Tensor::from_vec(Shape::d2(m, k), fill(m * k, 1)).unwrap();
        let b = Tensor::from_vec(Shape::d2(k, n), fill(k * n, 2)).unwrap();
        let c = Tensor::from_vec(Shape::d2(n, q), fill(n * q, 3)).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn prop_transpose_involution(m in 1usize..8, n in 1usize..8, seed in 0u64..20) {
        let data: Vec<f32> = (0..m * n).map(|i| (i as f32 + seed as f32).sin()).collect();
        let a = Tensor::from_vec(Shape::d2(m, n), data).unwrap();
        prop_assert_eq!(a.transpose2().unwrap().transpose2().unwrap(), a);
    }

    /// matmul distributes over addition: A·(B + C) == A·B + A·C.
    #[test]
    fn prop_matmul_distributive(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..20) {
        let fill = |len: usize, salt: u64| -> Vec<f32> {
            (0..len).map(|i| ((i as u64 + salt + seed) % 13) as f32 - 6.0).collect()
        };
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let c = fill(k * n, 3);
        let bc: Vec<f32> = b.iter().zip(&c).map(|(x, y)| x + y).collect();
        let mut lhs = vec![0.0; m * n];
        matmul_flat(&a, &bc, &mut lhs, m, k, n);
        let mut ab = vec![0.0; m * n];
        let mut ac = vec![0.0; m * n];
        matmul_flat(&a, &b, &mut ab, m, k, n);
        matmul_flat(&a, &c, &mut ac, m, k, n);
        for i in 0..m * n {
            prop_assert!((lhs[i] - (ab[i] + ac[i])).abs() < 1e-3);
        }
    }

    /// axpy is linear: x.axpy(a, y) == x + a*y element-wise.
    #[test]
    fn prop_axpy_linearity(n in 1usize..40, alpha in -5.0f32..5.0, seed in 0u64..20) {
        let x: Vec<f32> = (0..n).map(|i| ((i as u64 + seed) % 7) as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| ((i as u64 * 3 + seed) % 5) as f32 - 2.0).collect();
        let mut t = Tensor::from_vec(Shape::d1(n), x.clone()).unwrap();
        let ty = Tensor::from_vec(Shape::d1(n), y.clone()).unwrap();
        t.axpy(alpha, &ty).unwrap();
        for i in 0..n {
            prop_assert!((t.data()[i] - (x[i] + alpha * y[i])).abs() < 1e-4);
        }
    }

    /// Softmax rows are probability distributions and order-preserving.
    #[test]
    fn prop_softmax_is_distribution(rows in 1usize..5, cols in 1usize..8, seed in 0u64..30) {
        let x: Vec<f32> = (0..rows * cols)
            .map(|i| (((i as u64 + 1) * (seed + 1)) % 97) as f32 / 10.0 - 4.0)
            .collect();
        let mut s = vec![0.0; x.len()];
        softmax_rows(&x, &mut s, rows, cols);
        for r in 0..rows {
            let row = &s[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // order preservation
            let xr = &x[r * cols..(r + 1) * cols];
            for i in 0..cols {
                for j in 0..cols {
                    if xr[i] < xr[j] {
                        prop_assert!(row[i] <= row[j] + 1e-6);
                    }
                }
            }
        }
    }

    /// log-softmax equals ln(softmax) where softmax is not tiny.
    #[test]
    fn prop_log_softmax_consistent(cols in 1usize..10, seed in 0u64..30) {
        let x: Vec<f32> = (0..cols).map(|i| ((i as u64 + seed) % 11) as f32 - 5.0).collect();
        let mut s = vec![0.0; cols];
        let mut ls = vec![0.0; cols];
        softmax_rows(&x, &mut s, 1, cols);
        log_softmax_rows(&x, &mut ls, 1, cols);
        for i in 0..cols {
            if s[i] > 1e-4 {
                prop_assert!((ls[i] - s[i].ln()).abs() < 1e-4);
            }
        }
    }

    /// norm2 satisfies the triangle inequality under add_assign.
    #[test]
    fn prop_norm_triangle(a in tensor_strategy(16), b in tensor_strategy(16)) {
        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        prop_assert!(sum.norm2() <= a.norm2() + b.norm2() + 1e-3);
    }

    /// Every matmul kernel is bitwise identical under any thread count and
    /// any chunk granularity — the replica-consistency guarantee training
    /// relies on. Inputs include exact zeros to exercise the skip path.
    #[test]
    fn prop_parallel_matmul_identical_to_serial(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        threads in 1usize..9, min_rows in 1usize..5,
        seed in 0u64..30,
    ) {
        let fill = |len: usize, salt: u64| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = (i as u64 + 1)
                        .wrapping_mul(seed * 3 + salt + 1)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    if h.is_multiple_of(5) { 0.0 } else { ((h >> 40) as f32 / 256.0) - 32.0 }
                })
                .collect()
        };
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let bt = fill(n * k, 3);
        let b2 = fill(m * n, 4);

        // Serial reference: one thread, default granularity.
        let mut c_flat = vec![0.0f32; m * n];
        let mut c_acc = fill(m * n, 5);
        let mut c_bt = vec![0.0f32; m * n];
        let mut c_at = fill(k * n, 6);
        parallel::with_thread_limit(1, || {
            matmul_flat(&a, &b, &mut c_flat, m, k, n);
            matmul_flat_acc(&a, &b, &mut c_acc, m, k, n);
            matmul_bt_flat(&a, &bt, &mut c_bt, m, k, n);
            matmul_at_flat_acc(&a, &b2, &mut c_at, m, k, n);
        });

        // Parallel run with chunking forced down to `min_rows` rows.
        let mut p_flat = vec![0.0f32; m * n];
        let mut p_acc = fill(m * n, 5);
        let mut p_bt = vec![0.0f32; m * n];
        let mut p_at = fill(k * n, 6);
        parallel::with_thread_limit(threads, || {
            parallel::with_min_chunk(min_rows, || {
                matmul_flat(&a, &b, &mut p_flat, m, k, n);
                matmul_flat_acc(&a, &b, &mut p_acc, m, k, n);
                matmul_bt_flat(&a, &bt, &mut p_bt, m, k, n);
                matmul_at_flat_acc(&a, &b2, &mut p_at, m, k, n);
            });
        });

        prop_assert_eq!(c_flat, p_flat);
        prop_assert_eq!(c_acc, p_acc);
        prop_assert_eq!(c_bt, p_bt);
        prop_assert_eq!(c_at, p_at);
    }
}
