//! Deterministic synthetic datasets for the gTop-k reproduction.
//!
//! The paper trains on Cifar-10, ImageNet and the Penn Treebank. Those
//! datasets cannot ship with this repository, so we substitute
//! procedurally generated tasks with learnable structure (DESIGN.md §2):
//!
//! * [`GaussianMixture`] — linearly separable-ish vector classification
//!   (the quickstart workload);
//! * [`PatternImages`] — class-conditioned image patterns plus noise in
//!   `[C, H, W]` layout, in a Cifar-like (3×8×8) and an ImageNet-like
//!   (3×16×16) configuration;
//! * [`MarkovText`] — a first-order Markov character stream with
//!   next-token targets, the PTB analogue for the LSTM experiments.
//!
//! Every dataset is **pure**: `item(i)` depends only on `(seed, i)`, so
//! all simulated workers can share a dataset object and shard it by rank
//! ([`shard_indices`]) without any I/O or synchronization, and every
//! experiment is bit-reproducible.

#![warn(missing_docs)]

mod images;
mod loader;
mod mixture;
mod text;

pub use images::PatternImages;
pub use loader::{shard_indices, BatchIter, Dataset, Subset};
pub use mixture::GaussianMixture;
pub use text::MarkovText;
