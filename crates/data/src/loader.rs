//! The dataset abstraction, rank sharding, and mini-batch iteration.

use gtopk_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A deterministic supervised dataset.
///
/// `item(i)` must be pure in `(self, i)` — no interior mutability — so
/// that simulated workers can share one instance.
pub trait Dataset: Send + Sync {
    /// Number of items.
    fn len(&self) -> usize;

    /// `true` if the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-item input dimensions (batch axis excluded), e.g. `[3, 8, 8]`
    /// for an image dataset or `[seq]` for a token dataset.
    fn input_dims(&self) -> Vec<usize>;

    /// Number of target values per item (1 for classification, `seq` for
    /// next-token prediction).
    fn targets_per_item(&self) -> usize;

    /// Number of target classes.
    fn num_classes(&self) -> usize;

    /// The `i`-th item: flat input features and integer targets.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `i >= self.len()`.
    fn item(&self, i: usize) -> (Vec<f32>, Vec<usize>);

    /// Assembles a batch tensor and target list from item indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "batch must be non-empty");
        let per_item: usize = self.input_dims().iter().product();
        let mut data = Vec::with_capacity(indices.len() * per_item);
        let mut targets = Vec::with_capacity(indices.len() * self.targets_per_item());
        for &i in indices {
            let (x, y) = self.item(i);
            assert_eq!(x.len(), per_item, "item feature length mismatch");
            assert_eq!(
                y.len(),
                self.targets_per_item(),
                "item target length mismatch"
            );
            data.extend(x);
            targets.extend(y);
        }
        let mut dims = vec![indices.len()];
        dims.extend(self.input_dims());
        let t = Tensor::from_vec(Shape::new(dims), data).expect("batch volume matches");
        (t, targets)
    }
}

/// Splits `0..len` into `size` contiguous shards and returns shard `rank`
/// — the data-parallel partitioning of S-SGD (each worker sees a disjoint
/// subset, together covering the dataset).
///
/// # Panics
///
/// Panics if `rank >= size` or `size == 0`.
pub fn shard_indices(len: usize, rank: usize, size: usize) -> Vec<usize> {
    assert!(size > 0, "world size must be positive");
    assert!(rank < size, "rank out of range");
    let start = rank * len / size;
    let end = (rank + 1) * len / size;
    (start..end).collect()
}

/// Epoch-shuffled mini-batch index iterator over a shard.
///
/// Reshuffles at each [`BatchIter::next_epoch`] with a deterministic
/// epoch-derived seed; batches are fixed-size (a trailing remainder is
/// dropped, matching the common drop-last loader the paper's setup uses).
#[derive(Debug, Clone)]
pub struct BatchIter {
    shard: Vec<usize>,
    batch_size: usize,
    seed: u64,
    epoch: u64,
    order: Vec<usize>,
    cursor: usize,
}

impl BatchIter {
    /// Creates an iterator over `shard` with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or the shard has fewer items than one
    /// batch.
    pub fn new(shard: Vec<usize>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(
            shard.len() >= batch_size,
            "shard smaller than one batch ({} < {batch_size})",
            shard.len()
        );
        let mut it = BatchIter {
            shard,
            batch_size,
            seed,
            epoch: 0,
            order: Vec::new(),
            cursor: 0,
        };
        it.reshuffle();
        it
    }

    fn reshuffle(&mut self) {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        self.order = self.shard.clone();
        self.order.shuffle(&mut rng);
        self.cursor = 0;
    }

    /// Batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.shard.len() / self.batch_size
    }

    /// The iterator's durable position: `(epoch, cursor)`. Together with
    /// the constructor arguments this is the *entire* state — the shuffle
    /// order is a pure function of `(seed, epoch)` — so a checkpoint
    /// stores two integers instead of the index permutation.
    pub fn position(&self) -> (u64, usize) {
        (self.epoch, self.cursor)
    }

    /// Restores a position captured by [`BatchIter::position`] on an
    /// iterator built with the same shard/batch/seed: reshuffles for
    /// `epoch` and seeks to `cursor`.
    ///
    /// # Panics
    ///
    /// Panics if `cursor` is not a batch boundary within the shard.
    pub fn restore_position(&mut self, epoch: u64, cursor: usize) {
        assert!(
            cursor <= self.shard.len() && cursor.is_multiple_of(self.batch_size),
            "cursor {cursor} is not a batch boundary of a {}-item shard",
            self.shard.len()
        );
        self.epoch = epoch;
        self.reshuffle();
        self.cursor = cursor;
    }

    /// Advances to the next epoch (reshuffles deterministically).
    pub fn next_epoch(&mut self) {
        self.epoch += 1;
        self.reshuffle();
    }

    /// Next batch of indices, or `None` when the epoch is exhausted.
    pub fn next_batch(&mut self) -> Option<&[usize]> {
        if self.cursor + self.batch_size > self.order.len() {
            return None;
        }
        let out = &self.order[self.cursor..self.cursor + self.batch_size];
        self.cursor += self.batch_size;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting {
        n: usize,
    }
    impl Dataset for Counting {
        fn len(&self) -> usize {
            self.n
        }
        fn input_dims(&self) -> Vec<usize> {
            vec![2]
        }
        fn targets_per_item(&self) -> usize {
            1
        }
        fn num_classes(&self) -> usize {
            2
        }
        fn item(&self, i: usize) -> (Vec<f32>, Vec<usize>) {
            (vec![i as f32, 2.0 * i as f32], vec![i % 2])
        }
    }

    #[test]
    fn shards_partition_everything() {
        let len = 103;
        let size = 4;
        let mut all: Vec<usize> = (0..size)
            .flat_map(|r| shard_indices(len, r, size))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn shards_are_balanced() {
        for size in [1, 2, 3, 5, 8] {
            let sizes: Vec<usize> = (0..size)
                .map(|r| shard_indices(100, r, size).len())
                .collect();
            let (mn, mx) = (
                *sizes.iter().min().expect("non-empty"),
                *sizes.iter().max().expect("non-empty"),
            );
            assert!(mx - mn <= 1, "size {size}: {sizes:?}");
        }
    }

    #[test]
    fn batch_assembles_tensor_and_targets() {
        let ds = Counting { n: 10 };
        let (t, y) = ds.batch(&[1, 3]);
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 6.0]);
        assert_eq!(y, vec![1, 1]);
    }

    #[test]
    fn epochs_reshuffle_deterministically() {
        let mk = || BatchIter::new((0..16).collect(), 4, 7);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..2 {
            // identical orders for identical seeds
            while let (Some(x), Some(y)) = (
                a.next_batch().map(<[usize]>::to_vec),
                b.next_batch().map(<[usize]>::to_vec),
            ) {
                assert_eq!(x, y);
            }
            a.next_epoch();
            b.next_epoch();
        }
        // different epochs give different orders (overwhelmingly likely)
        let mut e0 = mk();
        let mut e1 = mk();
        e1.next_epoch();
        assert_ne!(e0.next_batch(), e1.next_batch());
    }

    #[test]
    fn epoch_covers_shard_once() {
        let mut it = BatchIter::new((0..12).collect(), 3, 1);
        let mut seen = Vec::new();
        while let Some(b) = it.next_batch() {
            seen.extend_from_slice(b);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
        assert_eq!(it.batches_per_epoch(), 4);
    }

    #[test]
    #[should_panic(expected = "smaller than one batch")]
    fn undersized_shard_rejected() {
        let _ = BatchIter::new(vec![0, 1], 3, 0);
    }
}

/// A contiguous view into another dataset — used to carve train /
/// evaluation splits out of one generated corpus so both share class
/// structure but no items.
///
/// # Examples
///
/// ```
/// use gtopk_data::{Dataset, GaussianMixture, Subset};
/// let ds = GaussianMixture::new(0, 100, 4, 2, 2.0, 0.3);
/// let train = Subset::new(&ds, 0, 80);
/// let eval = Subset::new(&ds, 80, 20);
/// assert_eq!(train.len(), 80);
/// assert_eq!(eval.item(0), ds.item(80));
/// ```
#[derive(Debug, Clone)]
pub struct Subset<'a, D: ?Sized> {
    inner: &'a D,
    offset: usize,
    len: usize,
}

impl<'a, D: Dataset + ?Sized> Subset<'a, D> {
    /// Creates a view of `len` items starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the inner dataset.
    pub fn new(inner: &'a D, offset: usize, len: usize) -> Self {
        assert!(
            offset + len <= inner.len(),
            "subset [{offset}, {}) exceeds dataset of {}",
            offset + len,
            inner.len()
        );
        Subset { inner, offset, len }
    }
}

impl<D: Dataset + ?Sized> Dataset for Subset<'_, D> {
    fn len(&self) -> usize {
        self.len
    }

    fn input_dims(&self) -> Vec<usize> {
        self.inner.input_dims()
    }

    fn targets_per_item(&self) -> usize {
        self.inner.targets_per_item()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn item(&self, i: usize) -> (Vec<f32>, Vec<usize>) {
        assert!(i < self.len, "index {i} out of subset range");
        self.inner.item(self.offset + i)
    }
}

#[cfg(test)]
mod subset_tests {
    use super::*;
    use crate::GaussianMixture;

    #[test]
    fn subset_windows_correctly() {
        let ds = GaussianMixture::new(1, 50, 3, 2, 1.0, 0.1);
        let sub = Subset::new(&ds, 10, 20);
        assert_eq!(sub.len(), 20);
        assert_eq!(sub.item(5), ds.item(15));
        assert_eq!(sub.num_classes(), 2);
        assert_eq!(sub.input_dims(), ds.input_dims());
    }

    #[test]
    #[should_panic(expected = "exceeds dataset")]
    fn oversized_subset_rejected() {
        let ds = GaussianMixture::new(1, 10, 3, 2, 1.0, 0.1);
        let _ = Subset::new(&ds, 5, 6);
    }

    #[test]
    #[should_panic(expected = "out of subset range")]
    fn subset_bounds_enforced() {
        let ds = GaussianMixture::new(1, 10, 3, 2, 1.0, 0.1);
        let sub = Subset::new(&ds, 0, 5);
        let _ = sub.item(5);
    }
}
