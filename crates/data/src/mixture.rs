use crate::Dataset;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Gaussian-mixture classification: each class is an isotropic Gaussian
/// blob around a random unit-ish mean scaled by `separation`.
///
/// # Examples
///
/// ```
/// use gtopk_data::{Dataset, GaussianMixture};
/// let ds = GaussianMixture::new(7, 100, 8, 4, 2.0, 0.5);
/// assert_eq!(ds.len(), 100);
/// let (x, y) = ds.item(3);
/// assert_eq!(x.len(), 8);
/// assert!(y[0] < 4);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    seed: u64,
    n: usize,
    dim: usize,
    classes: usize,
    noise: f32,
    means: Vec<Vec<f32>>,
}

impl GaussianMixture {
    /// Creates a mixture dataset.
    ///
    /// # Panics
    ///
    /// Panics if `n`, `dim` or `classes` is zero, or noise/separation is
    /// negative.
    pub fn new(
        seed: u64,
        n: usize,
        dim: usize,
        classes: usize,
        separation: f32,
        noise: f32,
    ) -> Self {
        assert!(
            n > 0 && dim > 0 && classes > 0,
            "dimensions must be positive"
        );
        assert!(
            separation >= 0.0 && noise >= 0.0,
            "scales must be non-negative"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new_inclusive(-1.0f32, 1.0);
        let means = (0..classes)
            .map(|_| {
                (0..dim)
                    .map(|_| dist.sample(&mut rng) * separation)
                    .collect()
            })
            .collect();
        GaussianMixture {
            seed,
            n,
            dim,
            classes,
            noise,
            means,
        }
    }

    /// Class means (for diagnostics).
    pub fn means(&self) -> &[Vec<f32>] {
        &self.means
    }
}

impl Dataset for GaussianMixture {
    fn len(&self) -> usize {
        self.n
    }

    fn input_dims(&self) -> Vec<usize> {
        vec![self.dim]
    }

    fn targets_per_item(&self) -> usize {
        1
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn item(&self, i: usize) -> (Vec<f32>, Vec<usize>) {
        assert!(i < self.n, "index {i} out of range");
        let class = i % self.classes;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ ((i as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d)));
        let dist = Uniform::new_inclusive(-1.0f32, 1.0);
        let x = self.means[class]
            .iter()
            .map(|&m| m + dist.sample(&mut rng) * self.noise)
            .collect();
        (x, vec![class])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_are_pure() {
        let ds = GaussianMixture::new(1, 50, 4, 3, 2.0, 0.1);
        assert_eq!(ds.item(17), ds.item(17));
        assert_ne!(ds.item(17).0, ds.item(20).0);
    }

    #[test]
    fn classes_are_balanced_round_robin() {
        let ds = GaussianMixture::new(2, 30, 4, 3, 2.0, 0.1);
        let counts = (0..30).fold(vec![0usize; 3], |mut c, i| {
            c[ds.item(i).1[0]] += 1;
            c
        });
        assert_eq!(counts, vec![10, 10, 10]);
    }

    #[test]
    fn low_noise_items_cluster_around_means() {
        let ds = GaussianMixture::new(3, 60, 6, 2, 3.0, 0.01);
        for i in 0..10 {
            let (x, y) = ds.item(i);
            let mean = &ds.means()[y[0]];
            let dist2: f32 = x
                .iter()
                .zip(mean.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(dist2 < 0.01, "item {i} too far from its mean");
        }
    }

    #[test]
    fn same_seed_same_dataset() {
        let a = GaussianMixture::new(9, 10, 3, 2, 1.0, 0.5);
        let b = GaussianMixture::new(9, 10, 3, 2, 1.0, 0.5);
        for i in 0..10 {
            assert_eq!(a.item(i), b.item(i));
        }
    }
}
