use crate::Dataset;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A first-order Markov character stream with next-token targets — the
/// Penn-Treebank stand-in for the LSTM language-model experiments.
///
/// A random sparse-ish transition matrix is drawn once from the seed;
/// the corpus is one long deterministic walk. Item `i` is the window
/// `tokens[i·S .. i·S+S]` with targets shifted by one, so an LSTM that
/// learns the transition structure drives the loss well below the
/// uniform `ln(vocab)` baseline.
///
/// # Examples
///
/// ```
/// use gtopk_data::{Dataset, MarkovText};
/// let ds = MarkovText::new(0, 64, 10, 16);
/// let (x, y) = ds.item(5);
/// assert_eq!(x.len(), 16);
/// assert_eq!(y.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovText {
    vocab: usize,
    seq: usize,
    n: usize,
    tokens: Vec<usize>,
}

impl MarkovText {
    /// Generates a corpus of `n` windows of length `seq` over `vocab`
    /// symbols.
    ///
    /// # Panics
    ///
    /// Panics if `n`, `vocab < 2` or `seq` is zero.
    pub fn new(seed: u64, n: usize, vocab: usize, seq: usize) -> Self {
        assert!(n > 0 && seq > 0, "dimensions must be positive");
        assert!(vocab >= 2, "vocab must have at least two symbols");
        let mut rng = StdRng::seed_from_u64(seed);
        // Peaked transition distribution: from each symbol, 2 likely
        // successors carry most of the probability mass.
        let mut nexts: Vec<[usize; 2]> = Vec::with_capacity(vocab);
        for _ in 0..vocab {
            let a = rng.gen_range(0..vocab);
            let b = rng.gen_range(0..vocab);
            nexts.push([a, b]);
        }
        let total = n * seq + 1;
        let mut tokens = Vec::with_capacity(total);
        let mut cur = 0usize;
        let coin = Uniform::new(0.0f32, 1.0);
        for _ in 0..total {
            tokens.push(cur);
            let r = coin.sample(&mut rng);
            cur = if r < 0.45 {
                nexts[cur][0]
            } else if r < 0.9 {
                nexts[cur][1]
            } else {
                rng.gen_range(0..vocab)
            };
        }
        MarkovText {
            vocab,
            seq,
            n,
            tokens,
        }
    }

    /// Sequence length per item.
    pub fn seq_len(&self) -> usize {
        self.seq
    }

    /// The entropy floor of a memoryless predictor, `ln(vocab)` — losses
    /// below this demonstrate the model learned transition structure.
    pub fn uniform_loss(&self) -> f32 {
        (self.vocab as f32).ln()
    }
}

impl Dataset for MarkovText {
    fn len(&self) -> usize {
        self.n
    }

    fn input_dims(&self) -> Vec<usize> {
        vec![self.seq]
    }

    fn targets_per_item(&self) -> usize {
        self.seq
    }

    fn num_classes(&self) -> usize {
        self.vocab
    }

    fn item(&self, i: usize) -> (Vec<f32>, Vec<usize>) {
        assert!(i < self.n, "index {i} out of range");
        let start = i * self.seq;
        let x = self.tokens[start..start + self.seq]
            .iter()
            .map(|&t| t as f32)
            .collect();
        let y = self.tokens[start + 1..start + self.seq + 1].to_vec();
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_are_inputs_shifted() {
        let ds = MarkovText::new(1, 10, 5, 8);
        let (x0, y0) = ds.item(0);
        let (x1, _) = ds.item(1);
        // y0[j] == x0[j+1] for j < seq-1, and y0 bridges into x1.
        for j in 0..7 {
            assert_eq!(y0[j], x0[j + 1] as usize);
        }
        assert_eq!(y0[7], x1[0] as usize);
    }

    #[test]
    fn tokens_within_vocab() {
        let ds = MarkovText::new(2, 20, 7, 5);
        for i in 0..20 {
            let (x, y) = ds.item(i);
            assert!(x.iter().all(|&t| (t as usize) < 7));
            assert!(y.iter().all(|&t| t < 7));
        }
    }

    #[test]
    fn corpus_is_deterministic_and_structured() {
        let a = MarkovText::new(3, 50, 6, 10);
        let b = MarkovText::new(3, 50, 6, 10);
        for i in 0..50 {
            assert_eq!(a.item(i), b.item(i));
        }
        // Structured: bigram distribution is far from uniform. Count the
        // most frequent successor of symbol 0.
        let mut counts = vec![0usize; 6];
        let mut total = 0usize;
        for i in 0..49 {
            let (x, y) = a.item(i);
            for j in 0..x.len() {
                if x[j] as usize == 0 {
                    counts[y[j]] += 1;
                    total += 1;
                }
            }
        }
        if total > 20 {
            let max = *counts.iter().max().expect("non-empty");
            assert!(
                (max as f32) / (total as f32) > 0.3,
                "successors of 0 look uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn uniform_loss_is_ln_vocab() {
        let ds = MarkovText::new(0, 4, 10, 4);
        assert!((ds.uniform_loss() - 10.0f32.ln()).abs() < 1e-6);
    }
}
