use crate::Dataset;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Class-conditioned pattern images: each class has a fixed random
/// `[C, H, W]` template; an item is its class template plus per-item
/// noise. The Cifar-10 / ImageNet stand-in for the CNN convergence
/// experiments.
///
/// # Examples
///
/// ```
/// use gtopk_data::{Dataset, PatternImages};
/// let ds = PatternImages::cifar_like(0, 256);
/// assert_eq!(ds.input_dims(), vec![3, 8, 8]);
/// assert_eq!(ds.num_classes(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct PatternImages {
    seed: u64,
    n: usize,
    channels: usize,
    size: usize,
    classes: usize,
    noise: f32,
    templates: Vec<Vec<f32>>,
}

impl PatternImages {
    /// Creates a pattern-image dataset.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `noise` is negative.
    pub fn new(
        seed: u64,
        n: usize,
        channels: usize,
        size: usize,
        classes: usize,
        noise: f32,
    ) -> Self {
        assert!(
            n > 0 && channels > 0 && size > 0 && classes > 0,
            "dimensions must be positive"
        );
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new_inclusive(-1.0f32, 1.0);
        let vol = channels * size * size;
        let templates = (0..classes)
            .map(|_| (0..vol).map(|_| dist.sample(&mut rng)).collect())
            .collect();
        PatternImages {
            seed,
            n,
            channels,
            size,
            classes,
            noise,
            templates,
        }
    }

    /// Cifar-10-like configuration: 10 classes of 3×8×8 images, moderate
    /// noise.
    pub fn cifar_like(seed: u64, n: usize) -> Self {
        PatternImages::new(seed, n, 3, 8, 10, 0.4)
    }

    /// ImageNet-like configuration: more classes, larger images, higher
    /// noise (a harder task, as ImageNet is to Cifar).
    pub fn imagenet_like(seed: u64, n: usize) -> Self {
        PatternImages::new(seed, n, 3, 16, 20, 0.6)
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Dataset for PatternImages {
    fn len(&self) -> usize {
        self.n
    }

    fn input_dims(&self) -> Vec<usize> {
        vec![self.channels, self.size, self.size]
    }

    fn targets_per_item(&self) -> usize {
        1
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn item(&self, i: usize) -> (Vec<f32>, Vec<usize>) {
        assert!(i < self.n, "index {i} out of range");
        let class = i % self.classes;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ ((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        let dist = Uniform::new_inclusive(-1.0f32, 1.0);
        let x = self.templates[class]
            .iter()
            .map(|&t| t + dist.sample(&mut rng) * self.noise)
            .collect();
        (x, vec![class])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_purity() {
        let ds = PatternImages::cifar_like(4, 100);
        let (x, y) = ds.item(42);
        assert_eq!(x.len(), 3 * 8 * 8);
        assert_eq!(y, vec![2]); // 42 % 10
        assert_eq!(ds.item(42), ds.item(42));
    }

    #[test]
    fn imagenet_like_is_bigger_and_harder() {
        let c = PatternImages::cifar_like(0, 10);
        let i = PatternImages::imagenet_like(0, 10);
        assert!(
            i.input_dims().iter().product::<usize>() > c.input_dims().iter().product::<usize>()
        );
        assert!(i.num_classes() > c.num_classes());
    }

    #[test]
    fn same_class_items_correlate_templates() {
        let ds = PatternImages::new(5, 40, 1, 4, 2, 0.1);
        let (a, ya) = ds.item(0);
        let (b, yb) = ds.item(2); // same class (0), different noise
        assert_eq!(ya, yb);
        let dist2: f32 = a.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum();
        // Both are template ± 0.1 noise, so the gap is small...
        assert!(dist2 < 16.0 * 0.04 + 1e-3);
        // ...while different classes are typically far apart.
        let (c, yc) = ds.item(1);
        assert_ne!(ya, yc);
        let cross: f32 = a.iter().zip(&c).map(|(p, q)| (p - q) * (p - q)).sum();
        assert!(cross > dist2);
    }
}
