//! Property-based tests over the synthetic datasets and loaders.

use gtopk_data::{
    shard_indices, BatchIter, Dataset, GaussianMixture, MarkovText, PatternImages, Subset,
};
use proptest::prelude::*;

proptest! {
    /// Sharding partitions the index space for any (len, size).
    #[test]
    fn prop_shards_partition(len in 1usize..300, size in 1usize..17) {
        let mut all: Vec<usize> = (0..size).flat_map(|r| shard_indices(len, r, size)).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..len).collect::<Vec<_>>());
    }

    /// Every epoch of a BatchIter covers its shard exactly once (modulo
    /// the dropped remainder), with no duplicates.
    #[test]
    fn prop_batch_iter_covers_without_duplicates(
        n in 4usize..100, batch in 1usize..8, seed in 0u64..50, epochs in 1u64..4,
    ) {
        prop_assume!(n >= batch);
        let mut it = BatchIter::new((100..100 + n).collect(), batch, seed);
        for _ in 0..epochs {
            let mut seen = Vec::new();
            while let Some(b) = it.next_batch() {
                seen.extend_from_slice(b);
            }
            let full_batches = n / batch;
            prop_assert_eq!(seen.len(), full_batches * batch);
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), seen.len(), "duplicates within an epoch");
            it.next_epoch();
        }
    }

    /// Dataset items are pure: repeated access is identical, and batches
    /// are concatenations of items.
    #[test]
    fn prop_items_pure_and_batches_concatenate(seed in 0u64..30, idx in 0usize..50) {
        let ds = GaussianMixture::new(seed, 50, 6, 3, 2.0, 0.5);
        prop_assert_eq!(ds.item(idx), ds.item(idx));
        let (t, ys) = ds.batch(&[idx, (idx + 7) % 50]);
        let (x0, y0) = ds.item(idx);
        let (x1, y1) = ds.item((idx + 7) % 50);
        prop_assert_eq!(&t.data()[..6], x0.as_slice());
        prop_assert_eq!(&t.data()[6..], x1.as_slice());
        prop_assert_eq!(ys, vec![y0[0], y1[0]]);
    }

    /// Subsets window their parent consistently for any valid window.
    #[test]
    fn prop_subset_windows(offset in 0usize..40, len in 1usize..20) {
        let ds = PatternImages::new(3, 64, 1, 4, 4, 0.2);
        prop_assume!(offset + len <= ds.len());
        let sub = Subset::new(&ds, offset, len);
        for i in (0..len).step_by(5) {
            prop_assert_eq!(sub.item(i), ds.item(offset + i));
        }
        prop_assert_eq!(sub.num_classes(), ds.num_classes());
    }

    /// Markov text targets always equal inputs shifted by one position
    /// within a window.
    #[test]
    fn prop_markov_shift_invariant(seed in 0u64..20, item in 0usize..30) {
        let ds = MarkovText::new(seed, 30, 8, 10);
        let (x, y) = ds.item(item);
        for j in 0..9 {
            prop_assert_eq!(y[j], x[j + 1] as usize);
        }
    }
}
