//! Property-based tests over the core aggregation algorithms.

use gtopk::{gtopk_all_reduce, naive_gtopk_all_reduce, ps_pull_round, ps_push_round, Algorithm};
use gtopk_comm::{Cluster, CostModel, ShardMap};
use gtopk_sparse::{topk_sparse, Residual};
use proptest::prelude::*;

fn grad(rank: usize, dim: usize, seed: u64) -> Vec<f32> {
    (0..dim)
        .map(|i| {
            let h = (i as u64 + 7)
                .wrapping_mul(rank as u64 * 3 + seed + 11)
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
            ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The single-shard PS (the old star's semantics) and the exact-sum
    /// reference select identical coordinate sets for any P, k and
    /// input. The pull reconstruction drops exact zeros, so supports
    /// are compared over nonzero entries.
    #[test]
    fn prop_ps_matches_naive(p in 1usize..9, k in 1usize..8, seed in 0u64..40) {
        let dim = 48usize;
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let members: Vec<usize> = (0..p).collect();
            let local = topk_sparse(&grad(comm.rank(), dim, seed), k);
            let map = ShardMap::new(dim, 1);
            let own = ps_push_round(comm, &members, &map, &[k], vec![local.clone()]).unwrap();
            let ps = ps_pull_round(comm, &members, &map, &own).unwrap();
            let naive = naive_gtopk_all_reduce(comm, local, k).unwrap();
            (ps, naive)
        });
        for (ps, (nv, _nm)) in out {
            let pidx: Vec<u32> =
                ps.iter().filter(|&(_, v)| v != 0.0).map(|(i, _)| i).collect();
            let nidx: Vec<u32> =
                nv.iter().filter(|&(_, v)| v != 0.0).map(|(i, _)| i).collect();
            prop_assert_eq!(pidx, nidx);
        }
    }

    /// The Top-k aggregator never loses gradient mass: residual plus
    /// P×(averaged update) reconstructs the contributed gradients.
    #[test]
    fn prop_topk_aggregator_conserves(p in 1usize..8, k in 1usize..6, seed in 0u64..30) {
        let dim = 32usize;
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let mut agg = Algorithm::TopK.aggregator();
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut residual = Residual::new(dim);
            let g = grad(comm.rank(), dim, seed);
            let update = agg.aggregate(comm, &members, &mut residual, &g, k).unwrap();
            (g, update, residual.dense().to_vec())
        });
        let mut contributed = vec![0.0f64; dim];
        let mut recovered = vec![0.0f64; dim];
        for (r, (g, update, res)) in out.iter().enumerate() {
            for (c, &v) in contributed.iter_mut().zip(g.iter()) {
                *c += v as f64;
            }
            for (rec, &v) in recovered.iter_mut().zip(res.iter()) {
                *rec += v as f64;
            }
            if r == 0 {
                if let gtopk::Update::Sparse(sv) = update {
                    for (i, v) in sv.iter() {
                        recovered[i as usize] += v as f64 * p as f64;
                    }
                }
            }
        }
        for i in 0..dim {
            prop_assert!((contributed[i] - recovered[i]).abs() < 1e-3,
                         "coord {i}: {} vs {}", contributed[i], recovered[i]);
        }
    }

    /// gTop-k's returned mask always matches the returned vector's
    /// support, for any cluster size including non-powers-of-two.
    #[test]
    fn prop_gtopk_mask_matches_support(p in 1usize..10, k in 1usize..8, seed in 0u64..30) {
        let dim = 64usize;
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let local = topk_sparse(&grad(comm.rank(), dim, seed), k);
            gtopk_all_reduce(comm, local, k).unwrap()
        });
        for (v, m) in out {
            prop_assert_eq!(v.indices(), m.indices());
        }
    }

    /// Aggregating twice with fresh gradients keeps replicas identical:
    /// every rank computes the same sequence of updates.
    #[test]
    fn prop_repeated_aggregation_stays_consistent(p in 2usize..7, seed in 0u64..20) {
        let dim = 40usize;
        let k = 3usize;
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let mut agg = Algorithm::GTopK.aggregator();
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut residual = Residual::new(dim);
            let mut updates = Vec::new();
            for step in 0..4u64 {
                let g = grad(comm.rank(), dim, seed + step);
                let u = agg.aggregate(comm, &members, &mut residual, &g, k).unwrap();
                updates.push(u);
            }
            updates
        });
        for rank in 1..p {
            prop_assert_eq!(&out[rank], &out[0], "rank {} diverged", rank);
        }
    }
}
