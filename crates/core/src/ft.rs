//! Fault-tolerant gTop-k collectives: revocation, survivor agreement,
//! and shrink-and-continue over a rebuilt binomial tree.
//!
//! The recovery protocol is a deliberately small cousin of MPI's ULFM
//! (revoke + shrink + agree):
//!
//! 1. **Detect** — a rank blocked in a collective observes a failure as
//!    [`CommError::Disconnected`] (the crashed rank's channels closed) or
//!    [`CommError::Timeout`].
//! 2. **Revoke** — the detecting rank sends a revoke message carrying the
//!    current membership epoch to every other previous member. Any rank
//!    blocked in `recv` that pulls a revoke for its current epoch aborts
//!    with [`CommError::Aborted`], which cascades the teardown through
//!    the whole dependency chain of the collective — no rank can stay
//!    blocked on a rank that has entered recovery, because entering
//!    recovery always starts by revoking everyone.
//! 3. **Agree** — survivors walk the previous member list in order; the
//!    first live member acts as coordinator, collects an ALIVE message
//!    (carrying the sender's latest checkpoint iteration) from every
//!    other previous member within a timeout, and answers with the agreed
//!    survivor set plus the common rollback iteration (the minimum of the
//!    reported checkpoints). Dead members are excluded by the immediate
//!    `Disconnected` their closed channels produce.
//! 4. **Shrink and continue** — every survivor bumps its membership
//!    epoch, purges traffic of the revoked epoch, rolls its training
//!    state back to the agreed checkpoint, and resumes with the
//!    collective *plan regenerated over the survivor positions* (the
//!    same [`Topology`] generator, a smaller position→rank mapping — no
//!    bespoke tree surgery) and gradient averaging rescaled to the live
//!    member count.
//!
//! Collective tags are epoch-stamped (`tag + epoch ·
//! [`EPOCH_TAG_STRIDE`]`), so traffic from before a recovery can never
//! alias a post-recovery receive; at epoch 0 the offset is zero and the
//! message schedule is bit-identical to the fault-free collectives.
//!
//! A live rank that the coordinator times out on is *expelled*: it is not
//! told the new membership, every candidate walk it attempts dies, and it
//! terminates with an error — the classic fate of a falsely-suspected
//! node in a crash-failure detector. Default timeouts are far above any
//! modeled straggler skew, so this only happens under pathological plans.
//!
//! # Rank rejoin (elastic regrowth)
//!
//! The same agreement round also *grows* membership. A restarted process
//! broadcasts [`Message::JOIN_REQ_TAG`] (carrying its newest durable
//! checkpoint iteration, see [`crate::ckpt`]) to every rank of the
//! original universe and keeps retrying. Members notice the request at a
//! step boundary, treat it exactly like a failure — revoke, epoch bump,
//! agree — and the coordinator folds the joiners into the member set. The
//! agreed rollback is then `min(anchor, joiner latest)`, where the
//! *anchor* is the iteration the membership last rolled back to when it
//! shrank: every survivor pins that generation in memory and the joiner
//! holds it (or the one boundary before it) on disk, so both sides can
//! restore a **common** generation and the regrown run replays the
//! fault-free schedule bit-exactly. Joiners do not take part in the ALIVE
//! round (they have no live epoch); the coordinator answers them directly
//! with [`Message::JOIN_WELCOME_TAG`] carrying the new epoch, the
//! rollback iteration, and the full member list.

use crate::gtopk_allreduce::gtopk_all_reduce_over;
use gtopk_comm::{CommError, Communicator, Message, Payload, Result, Topology};
use gtopk_sparse::{Mask, SparseVec};
use std::time::Duration;

/// Emits a recovery-protocol trace line on stderr when `GTOPK_FT_TRACE`
/// is set in the environment. The closure keeps formatting off the
/// normal path; the timestamp is wall-clock milliseconds modulo 10⁶ so
/// traces from different processes of one chaos run line up.
pub(crate) fn ft_trace(line: impl FnOnce() -> String) {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *ON.get_or_init(|| std::env::var_os("GTOPK_FT_TRACE").is_some()) {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() % 1_000_000)
            .unwrap_or(0);
        eprintln!("[ft {t:06}] {}", line());
    }
}

/// Tag-space stride between membership epochs. Everything a collective
/// sends in epoch `e` uses tags in
/// `[COLLECTIVE_TAG_BASE + e·stride, COLLECTIVE_TAG_BASE + (e+1)·stride)`.
/// Shared with the comm layer, which exempts the in-stride
/// ALIVE/MEMBERSHIP control band from link-serialization costs
/// (see [`Message::is_control`]).
pub const EPOCH_TAG_STRIDE: u32 = Message::EPOCH_TAG_STRIDE;

/// ALIVE round-robin tags start here (plus the epoch offset plus the
/// candidate index).
const TAG_ALIVE: u32 = Message::COLLECTIVE_TAG_BASE + 512;
/// Membership-announcement tags start here.
const TAG_MEMBERSHIP: u32 = Message::COLLECTIVE_TAG_BASE + 1024;
/// Joiner state-transfer tags start here (plus the epoch offset):
/// `+0` carries the model parameters, `+1` the optimizer velocity.
pub const TAG_XFER: u32 = Message::COLLECTIVE_TAG_BASE + 1536;

/// The collective tag offset of membership epoch `epoch`.
///
/// # Panics
///
/// Panics if the epoch count exceeds the tag space (far beyond any
/// realistic failure count).
pub fn epoch_tag_offset(epoch: u64) -> u32 {
    let off = epoch
        .checked_mul(u64::from(EPOCH_TAG_STRIDE))
        .expect("epoch overflow");
    assert!(
        off < u64::from(u32::MAX - Message::COLLECTIVE_TAG_BASE) - u64::from(EPOCH_TAG_STRIDE),
        "too many membership epochs for the tag space"
    );
    off as u32
}

/// Membership-aware, epoch-stamped gTopKAllReduce: [Algorithm 3] over
/// the `topology`-shaped plan regenerated on `members` (sorted, must
/// contain the caller). With the full membership at epoch 0 and the
/// binomial topology this is identical to [`crate::gtopk_all_reduce`].
///
/// # Errors
///
/// Propagates transport errors — including [`CommError::Disconnected`] /
/// [`CommError::Aborted`] when a member failed, which the caller should
/// answer with [`recover`].
pub fn ft_gtopk_all_reduce(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    k: usize,
    topology: Topology,
) -> Result<(SparseVec, Mask)> {
    let off = epoch_tag_offset(comm.epoch());
    let (global, mask, rejected) = gtopk_all_reduce_over(comm, members, local, k, off, topology)?;
    comm.pool().put_sparse(rejected);
    Ok((global, mask))
}

/// Membership-aware, epoch-stamped variant of
/// [`crate::gtopk_all_reduce_with_feedback`]: additionally returns the
/// entries this rank's tree merges truncated away, so error feedback
/// stays exact across a shrink-and-continue membership change.
///
/// # Errors
///
/// As for [`ft_gtopk_all_reduce`].
pub fn ft_gtopk_all_reduce_with_feedback(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    k: usize,
    topology: Topology,
) -> Result<(SparseVec, Mask, SparseVec)> {
    let off = epoch_tag_offset(comm.epoch());
    gtopk_all_reduce_over(comm, members, local, k, off, topology)
}

/// The outcome of a survivor-agreement round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The agreed member set, sorted, including the caller (survivors
    /// plus any joiners admitted this round).
    pub members: Vec<usize>,
    /// The common checkpoint iteration every member must roll back to.
    /// Without joiners: the minimum of the survivors' latest checkpoints
    /// (checkpoints are taken at a fixed cadence, so ranks can be at most
    /// one checkpoint boundary apart when a failure hits). With joiners:
    /// `min(anchor, joiner latest)` — a generation survivors pin in
    /// memory and joiners hold on disk.
    pub rollback_iter: u64,
    /// The rank that coordinated this round (it owns the joiner state
    /// transfer).
    pub coordinator: usize,
    /// Ranks admitted into `members` this round, sorted (empty on a pure
    /// shrink).
    pub joined: Vec<usize>,
}

/// Runs the full recovery protocol after a detected failure *or* an
/// observed join request: revoke the current epoch towards every previous
/// member, bump the epoch, purge the revoked epoch's traffic, and agree
/// on the new member set and rollback point.
///
/// `my_latest_iter` is this rank's newest checkpoint iteration and
/// `my_anchor_iter` the generation the membership last rolled back to
/// (equal to `my_latest_iter` while no shrink has happened — both pinned
/// by the trainer). `known_joiners` carries any join requests the caller
/// already consumed via
/// [`gtopk_comm::Communicator::poll_join_requests`] at the step
/// boundary; the coordinator merges them with whatever is still queued.
///
/// # Errors
///
/// [`CommError::Disconnected`] / [`CommError::Timeout`] when no candidate
/// coordinator could be reached at all — the caller cannot continue and
/// should terminate (it has effectively been expelled).
pub fn recover(
    comm: &mut Communicator,
    prev_members: &[usize],
    my_latest_iter: u64,
    my_anchor_iter: u64,
    known_joiners: &[(usize, u64)],
) -> Result<Recovery> {
    assert!(
        prev_members.len() as u32 <= TAG_MEMBERSHIP - TAG_ALIVE,
        "member count exceeds the agreement tag space"
    );
    let revoked_epoch = comm.epoch();
    ft_trace(|| {
        format!(
            "rank {} enters recovery: revoking epoch {revoked_epoch}, latest {my_latest_iter}, \
             anchor {my_anchor_iter}, known joiners {known_joiners:?}",
            comm.rank()
        )
    });
    // Entering recovery ALWAYS starts by revoking everyone: this is what
    // guarantees no rank stays blocked waiting for us.
    for &m in prev_members {
        comm.revoke(m, revoked_epoch);
    }
    let epoch = revoked_epoch + 1;
    comm.set_epoch(epoch);
    purge_revoked_epochs(comm, epoch);
    agree_survivors(
        comm,
        prev_members,
        my_latest_iter,
        my_anchor_iter,
        known_joiners,
    )
}

/// Drops all buffered traffic belonging to epochs before `epoch`:
/// epoch-stamped collective payloads and stale revokes.
fn purge_revoked_epochs(comm: &mut Communicator, epoch: u64) {
    let fresh_base = Message::COLLECTIVE_TAG_BASE + epoch_tag_offset(epoch);
    comm.purge_pending(|m| {
        if m.tag == Message::REVOKE_TAG {
            return match m.payload {
                Payload::Scalar(e) => (e as u64) < epoch,
                _ => false,
            };
        }
        m.tag >= Message::COLLECTIVE_TAG_BASE && m.tag < fresh_base
    });
}

/// The agreement round of [`recover`] (already at the new epoch).
fn agree_survivors(
    comm: &mut Communicator,
    prev_members: &[usize],
    my_latest_iter: u64,
    my_anchor_iter: u64,
    known_joiners: &[(usize, u64)],
) -> Result<Recovery> {
    let off = epoch_tag_offset(comm.epoch());
    let me = comm.rank();
    let timeout = comm.recovery_timeout_ms();
    let mut last_err = CommError::timeout(me);
    for (idx, &candidate) in prev_members.iter().enumerate() {
        let tag_alive = TAG_ALIVE + off + idx as u32;
        let tag_member = TAG_MEMBERSHIP + off + idx as u32;
        if candidate == me {
            // Coordinator: collect ALIVE (`[latest, anchor]`) from every
            // other previous member. Each member resolves as one of:
            // survivor (ALIVE received), rejoining incarnation (JOIN_REQ
            // seen — its channels are open again but it only speaks
            // JOIN_REQ), dead (closed link), or unreachable (still
            // silent at the deadline). Members are polled in rank order
            // — the stash drain order feeds the simulated incast
            // accounting, which must stay deterministic — but the
            // deadline is *shared*: one slow or silent-but-open link can
            // eat the window, after which the others resolve instantly
            // from their queues instead of each burning a timeout of
            // their own (summed waits would push the announcement past
            // the workers' deadlines and partition the survivors). The
            // window is 2× the recovery timeout because detection skew
            // lets a live member enter recovery up to a full receive cap
            // after this rank did; a short per-member grace keeps a
            // just-late ALIVE from being excluded with zero wait.
            let mut members = vec![me];
            let mut min_latest = my_latest_iter;
            let mut min_anchor = my_anchor_iter;
            let mut early_joiners: Vec<(usize, u64)> = Vec::new();
            let wall = std::time::Instant::now();
            let cap = Duration::from_millis((timeout.max(1.0) * 2.0) as u64);
            for &m in prev_members {
                if m == me {
                    continue;
                }
                let grace = std::time::Instant::now();
                loop {
                    let down = comm.probe_link(m);
                    if let Some(msg) = comm.poll_tagged_from(m, tag_alive) {
                        let wire = msg.payload.into_dense();
                        ft_trace(|| format!("coordinator {me}: {m} ALIVE {wire:?}"));
                        min_latest = min_latest.min(wire[0] as u64);
                        min_anchor = min_anchor.min(wire[1] as u64);
                        members.push(m);
                        break;
                    }
                    let joins = comm.poll_join_requests(&[m]);
                    if !joins.is_empty() {
                        ft_trace(|| format!("coordinator {me}: {m} rejoining {joins:?}"));
                        early_joiners.extend(joins);
                        break;
                    }
                    if down {
                        ft_trace(|| format!("coordinator {me}: {m} link down, excluded"));
                        break;
                    }
                    if wall.elapsed() >= cap && grace.elapsed() >= Duration::from_millis(200) {
                        ft_trace(|| format!("coordinator {me}: {m} silent, excluded"));
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            // Admit joiners: requests the caller consumed at the step
            // boundary plus whatever is queued from absent ranks. A
            // request that arrives a moment too late simply triggers the
            // next recovery round (the joiner keeps retrying).
            let absent: Vec<usize> = (0..comm.size()).filter(|r| !members.contains(r)).collect();
            let mut joiners: Vec<(usize, u64)> = Vec::new();
            let queued = comm.poll_join_requests(&absent);
            for (r, iter) in known_joiners
                .iter()
                .copied()
                .chain(early_joiners)
                .chain(queued)
                .filter(|(r, _)| absent.contains(r))
            {
                match joiners.iter_mut().find(|(jr, _)| *jr == r) {
                    Some(j) => j.1 = j.1.max(iter),
                    None => joiners.push((r, iter)),
                }
            }
            joiners.sort_unstable();
            let rollback_iter = if joiners.is_empty() {
                min_latest
            } else {
                let min_join = joiners.iter().map(|&(_, it)| it).min().expect("non-empty");
                min_anchor.min(min_join)
            };
            let joined: Vec<usize> = joiners.iter().map(|&(r, _)| r).collect();
            members.extend(joined.iter().copied());
            members.sort_unstable();
            ft_trace(|| {
                format!(
                    "coordinator {me}: agreed members {members:?}, joined {joined:?}, \
                     rollback {rollback_iter}"
                )
            });
            // Announce the agreed membership + rollback point to the
            // survivors. The joined set is carried explicitly: when a
            // crashed rank restarts fast enough, its crash and rejoin
            // collapse into this one round and the announced membership
            // equals the previous one — a survivor diffing the member
            // lists would wrongly see a pure shrink and pin its rollback
            // anchor (the pin a *real* shrink plants so a later rejoin
            // can still reach the common generation), dragging every
            // future rollback to an iteration that eventually ages out
            // of the durable keep-window.
            let mut wire: Vec<f32> = Vec::with_capacity(members.len() + joined.len() + 2);
            wire.push(rollback_iter as f32);
            wire.push(joined.len() as f32);
            wire.extend(joined.iter().map(|&r| r as f32));
            wire.extend(members.iter().map(|&r| r as f32));
            let wire = std::sync::Arc::new(wire);
            for &m in &members {
                if m == me || joined.contains(&m) {
                    continue;
                }
                // A member that died between its ALIVE and now just
                // misses the announcement; it is still listed, and the
                // next failure detection will shrink it out.
                let _ = comm.send(m, tag_member, Payload::dense_shared(wire.clone()));
            }
            // Welcome the joiners: they are not in the ALIVE round, so
            // they learn epoch + rollback + membership from this frame.
            if !joined.is_empty() {
                let mut welcome: Vec<f32> = Vec::with_capacity(members.len() + 2);
                welcome.push(comm.epoch() as f32);
                welcome.push(rollback_iter as f32);
                welcome.extend(members.iter().map(|&r| r as f32));
                let welcome = std::sync::Arc::new(welcome);
                for &j in &joined {
                    let _ = comm.send(
                        j,
                        Message::JOIN_WELCOME_TAG,
                        Payload::dense_shared(welcome.clone()),
                    );
                }
            }
            return Ok(Recovery {
                members,
                rollback_iter,
                coordinator: me,
                joined,
            });
        }
        // Worker: report liveness to the candidate, then wait for the
        // membership announcement. Either step failing means the
        // candidate is dead or unreachable — walk on to the next one.
        let alive = vec![my_latest_iter as f32, my_anchor_iter as f32];
        if let Err(e) = comm.send(candidate, tag_alive, Payload::dense(alive)) {
            ft_trace(|| format!("rank {me}: ALIVE send to candidate {candidate} failed: {e:?}"));
            last_err = e;
            continue;
        }
        ft_trace(|| format!("rank {me}: ALIVE sent to candidate {candidate}, awaiting members"));
        // The announcement wait is a poll loop with its own wall
        // deadline rather than a `recv_deadline`: a blocking receive is
        // wall-capped at one receive timeout, but the coordinator may
        // legitimately answer later than that — it enters recovery up to
        // a full receive cap after this rank (failure-detection skew)
        // and then waits up to 2× the timeout collecting ALIVEs. 3×
        // covers the worst case; a dead candidate still resolves
        // instantly through `probe_link`.
        let wall = std::time::Instant::now();
        let cap = Duration::from_millis((timeout.max(1.0) * 3.0) as u64);
        let announcement = loop {
            let down = comm.probe_link(candidate);
            if let Some(msg) = comm.poll_tagged_from(candidate, tag_member) {
                break Ok(msg);
            }
            if down {
                break Err(CommError::Disconnected { peer: candidate });
            }
            if wall.elapsed() >= cap {
                break Err(CommError::timeout(candidate));
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        match announcement {
            Ok(msg) => {
                let wire = msg.payload.into_dense();
                ft_trace(|| format!("rank {me}: announcement from {candidate}: {wire:?}"));
                let rollback_iter = wire[0] as u64;
                let n_joined = wire[1] as usize;
                let joined: Vec<usize> =
                    wire[2..2 + n_joined].iter().map(|&r| r as usize).collect();
                let members: Vec<usize> =
                    wire[2 + n_joined..].iter().map(|&r| r as usize).collect();
                debug_assert!(members.contains(&me));
                return Ok(Recovery {
                    members,
                    rollback_iter,
                    coordinator: candidate,
                    joined,
                });
            }
            Err(e) => {
                ft_trace(|| format!("rank {me}: no announcement from {candidate}: {e:?}"));
                last_err = e;
                continue;
            }
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel, FaultPlan};
    use gtopk_sparse::topk_sparse;

    fn worker_grad(r: usize, dim: usize, seed: u64) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = (i as u64 + 1)
                    .wrapping_mul(r as u64 + seed + 1)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn ft_allreduce_matches_plain_on_full_membership() {
        for p in [2usize, 3, 4, 5, 8] {
            let members: Vec<usize> = (0..p).collect();
            let members_ref = &members;
            let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let g = worker_grad(comm.rank(), 64, 7);
                let local = topk_sparse(&g, 4);
                let plain = crate::gtopk_all_reduce(comm, local.clone(), 4).unwrap();
                let ft =
                    ft_gtopk_all_reduce(comm, members_ref, local, 4, Topology::Binomial).unwrap();
                (plain, ft)
            });
            for ((pv, pm), (fv, fm)) in out {
                assert_eq!(pv, fv, "P={p}");
                assert_eq!(pm, fm);
            }
        }
    }

    #[test]
    fn ft_allreduce_over_a_shrunk_membership() {
        // 5 ranks, rank 2 "dead" (never participates): the other four run
        // the collective over the shrunk member set and agree — for every
        // plan topology.
        for topo in Topology::ALL {
            let members = vec![0usize, 1, 3, 4];
            let members_ref = &members;
            let out = Cluster::new(5, CostModel::zero()).run(move |comm| {
                if comm.rank() == 2 {
                    return None;
                }
                let g = worker_grad(comm.rank(), 64, 3);
                let local = topk_sparse(&g, 4);
                Some(ft_gtopk_all_reduce(comm, members_ref, local, 4, topo).unwrap())
            });
            let (first, _) = out[0].clone().unwrap();
            assert!(first.nnz() <= 4 && first.nnz() > 0);
            for (r, o) in out.iter().enumerate() {
                match o {
                    None => assert_eq!(r, 2),
                    Some((v, _)) => assert_eq!(v, &first, "{} rank {r}", topo.name()),
                }
            }
        }
    }

    #[test]
    fn epoch_stamped_tags_separate_generations() {
        // The same collective at two different epochs must not cross
        // traffic: run epoch 0, bump, run epoch 1 with different data.
        let members = vec![0usize, 1, 2, 3];
        let members_ref = &members;
        let out = Cluster::new(4, CostModel::zero()).run(move |comm| {
            let g0 = worker_grad(comm.rank(), 32, 1);
            let r0 = ft_gtopk_all_reduce(
                comm,
                members_ref,
                topk_sparse(&g0, 3),
                3,
                Topology::Binomial,
            )
            .unwrap();
            comm.set_epoch(1);
            let g1 = worker_grad(comm.rank(), 32, 2);
            let r1 = ft_gtopk_all_reduce(
                comm,
                members_ref,
                topk_sparse(&g1, 3),
                3,
                Topology::Binomial,
            )
            .unwrap();
            (r0, r1)
        });
        for (r0, r1) in &out {
            assert_eq!(r0.0, out[0].0 .0);
            assert_eq!(r1.0, out[0].1 .0);
            assert_ne!(r0.0, r1.0, "different inputs must give different sums");
        }
    }

    #[test]
    fn recovery_agrees_on_survivors_and_min_checkpoint() {
        // Rank 1 crashes at step 0; the others detect it in the
        // collective, recover, and agree on {0, 2, 3} with the minimum
        // checkpoint. Checkpoint iters differ per rank on purpose.
        let out = Cluster::new(4, CostModel::zero())
            .with_fault_plan(FaultPlan::seeded(5).with_crash(1, 0))
            .run(|comm| {
                if comm.begin_step().is_err() {
                    return None; // rank 1 dies silently
                }
                let members: Vec<usize> = (0..4).collect();
                let g = worker_grad(comm.rank(), 32, 1);
                let local = topk_sparse(&g, 3);
                let err = ft_gtopk_all_reduce(comm, &members, local, 3, Topology::Binomial)
                    .expect_err("collective over a dead member must fail");
                assert!(
                    matches!(
                        err,
                        CommError::Disconnected { .. }
                            | CommError::Aborted { .. }
                            | CommError::Timeout { .. }
                    ),
                    "unexpected error {err}"
                );
                let ckpt = 10 + comm.rank() as u64; // min is rank 0's 10
                Some(recover(comm, &members, ckpt, ckpt, &[]).unwrap())
            });
        for (r, o) in out.iter().enumerate() {
            match o {
                None => assert_eq!(r, 1),
                Some(rec) => {
                    assert_eq!(rec.members, vec![0, 2, 3], "rank {r}");
                    assert_eq!(rec.rollback_iter, 10);
                }
            }
        }
    }

    #[test]
    fn recovery_cascades_to_the_next_candidate_when_rank0_dies() {
        // The lowest rank is the crashed one, so the coordinator role
        // falls to rank 1.
        let out = Cluster::new(4, CostModel::zero())
            .with_fault_plan(FaultPlan::seeded(6).with_crash(0, 0))
            .run(|comm| {
                if comm.begin_step().is_err() {
                    return None;
                }
                let members: Vec<usize> = (0..4).collect();
                let g = worker_grad(comm.rank(), 32, 2);
                let local = topk_sparse(&g, 3);
                ft_gtopk_all_reduce(comm, &members, local, 3, Topology::Binomial)
                    .expect_err("collective over a dead member must fail");
                Some(recover(comm, &members, 7, 7, &[]).unwrap())
            });
        for (r, o) in out.iter().enumerate() {
            match o {
                None => assert_eq!(r, 0),
                Some(rec) => {
                    assert_eq!(rec.members, vec![1, 2, 3], "rank {r}");
                    assert_eq!(rec.rollback_iter, 7);
                }
            }
        }
    }

    #[test]
    fn join_request_grows_the_membership() {
        // Ranks 0-3 are the current membership; rank 4 acts as a joiner:
        // it broadcasts JOIN_REQ (newest durable generation 40) and polls
        // for the WELCOME. The members agree on the grown set with
        // rollback = min(anchor=50, joiner 40) = 40, and run a collective
        // over all five ranks at the new epoch.
        let out = Cluster::new(5, CostModel::zero()).run(|comm| {
            let prev: Vec<usize> = (0..4).collect();
            if comm.rank() == 4 {
                for m in &prev {
                    let _ = comm.send(*m, Message::JOIN_REQ_TAG, Payload::Scalar(40.0));
                }
                let welcome = loop {
                    if let Some(msg) = comm.poll_tagged(Message::JOIN_WELCOME_TAG) {
                        break msg;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                };
                let coordinator = welcome.src;
                let wire = welcome.payload.into_dense();
                let epoch = wire[0] as u64;
                let rollback = wire[1] as u64;
                let members: Vec<usize> = wire[2..].iter().map(|&r| r as usize).collect();
                comm.set_epoch(epoch);
                assert_eq!(coordinator, 0);
                assert_eq!(rollback, 40);
                assert_eq!(members, vec![0, 1, 2, 3, 4]);
                let g = worker_grad(4, 32, 9);
                let sum =
                    ft_gtopk_all_reduce(comm, &members, topk_sparse(&g, 3), 3, Topology::Binomial)
                        .unwrap();
                return (members, rollback, sum.0);
            }
            // Member side: wait until the join request is visible (as the
            // trainer does at a step boundary), then run recovery.
            let joiners = loop {
                let reqs = comm.poll_join_requests(&[4]);
                if !reqs.is_empty() {
                    break reqs;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            };
            assert_eq!(joiners, vec![(4, 40)]);
            let latest = 60 + comm.rank() as u64;
            let rec = recover(comm, &prev, latest, 50, &joiners).unwrap();
            assert_eq!(rec.members, vec![0, 1, 2, 3, 4]);
            assert_eq!(rec.rollback_iter, 40);
            assert_eq!(rec.coordinator, 0);
            assert_eq!(rec.joined, vec![4]);
            let g = worker_grad(comm.rank(), 32, 9);
            let sum = ft_gtopk_all_reduce(
                comm,
                &rec.members,
                topk_sparse(&g, 3),
                3,
                Topology::Binomial,
            )
            .unwrap();
            (rec.members, rec.rollback_iter, sum.0)
        });
        for (members, rollback, sum) in &out {
            assert_eq!(members, &vec![0, 1, 2, 3, 4]);
            assert_eq!(*rollback, 40);
            assert_eq!(sum, &out[0].2, "post-join collective must agree");
        }
    }

    #[test]
    fn collective_works_after_recovery() {
        // End-to-end shrink-and-continue at the collective level: fail,
        // recover, and run the next epoch-stamped collectives over the
        // survivors — regenerating the plan for every topology.
        let out = Cluster::new(4, CostModel::zero())
            .with_fault_plan(FaultPlan::seeded(8).with_crash(2, 0))
            .run(|comm| {
                if comm.begin_step().is_err() {
                    return None;
                }
                let members: Vec<usize> = (0..4).collect();
                let g = worker_grad(comm.rank(), 48, 4);
                let local = topk_sparse(&g, 4);
                ft_gtopk_all_reduce(comm, &members, local.clone(), 4, Topology::Binomial)
                    .expect_err("must fail with rank 2 dead");
                let rec = recover(comm, &members, 0, 0, &[]).unwrap();
                assert_eq!(rec.members, vec![0, 1, 3]);
                assert_eq!(rec.coordinator, 0);
                assert!(rec.joined.is_empty());
                let results: Vec<_> = Topology::ALL
                    .iter()
                    .map(|&topo| {
                        ft_gtopk_all_reduce(comm, &rec.members, local.clone(), 4, topo).unwrap()
                    })
                    .collect();
                Some(results)
            });
        let first = out[0].clone().unwrap();
        assert!(first.iter().all(|(v, _)| v.nnz() > 0));
        for (r, o) in out.iter().enumerate() {
            match o {
                None => assert_eq!(r, 2),
                Some(results) => {
                    for (t, ((v, _), (fv, _))) in results.iter().zip(first.iter()).enumerate() {
                        assert_eq!(v, fv, "topology {t} rank {r}");
                    }
                }
            }
        }
    }
}
