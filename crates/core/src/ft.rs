//! Fault-tolerant gTop-k collectives: revocation, survivor agreement,
//! and shrink-and-continue over a rebuilt binomial tree.
//!
//! The recovery protocol is a deliberately small cousin of MPI's ULFM
//! (revoke + shrink + agree):
//!
//! 1. **Detect** — a rank blocked in a collective observes a failure as
//!    [`CommError::Disconnected`] (the crashed rank's channels closed) or
//!    [`CommError::Timeout`].
//! 2. **Revoke** — the detecting rank sends a revoke message carrying the
//!    current membership epoch to every other previous member. Any rank
//!    blocked in `recv` that pulls a revoke for its current epoch aborts
//!    with [`CommError::Aborted`], which cascades the teardown through
//!    the whole dependency chain of the collective — no rank can stay
//!    blocked on a rank that has entered recovery, because entering
//!    recovery always starts by revoking everyone.
//! 3. **Agree** — survivors walk the previous member list in order; the
//!    first live member acts as coordinator, collects an ALIVE message
//!    (carrying the sender's latest checkpoint iteration) from every
//!    other previous member within a timeout, and answers with the agreed
//!    survivor set plus the common rollback iteration (the minimum of the
//!    reported checkpoints). Dead members are excluded by the immediate
//!    `Disconnected` their closed channels produce.
//! 4. **Shrink and continue** — every survivor bumps its membership
//!    epoch, purges traffic of the revoked epoch, rolls its training
//!    state back to the agreed checkpoint, and resumes with the
//!    collective *plan regenerated over the survivor positions* (the
//!    same [`Topology`] generator, a smaller position→rank mapping — no
//!    bespoke tree surgery) and gradient averaging rescaled to the live
//!    member count.
//!
//! Collective tags are epoch-stamped (`tag + epoch ·
//! [`EPOCH_TAG_STRIDE`]`), so traffic from before a recovery can never
//! alias a post-recovery receive; at epoch 0 the offset is zero and the
//! message schedule is bit-identical to the fault-free collectives.
//!
//! A live rank that the coordinator times out on is *expelled*: it is not
//! told the new membership, every candidate walk it attempts dies, and it
//! terminates with an error — the classic fate of a falsely-suspected
//! node in a crash-failure detector. Default timeouts are far above any
//! modeled straggler skew, so this only happens under pathological plans.

use crate::gtopk_allreduce::gtopk_all_reduce_over;
use gtopk_comm::{CommError, Communicator, Message, Payload, Result, Topology};
use gtopk_sparse::{Mask, SparseVec};

/// Tag-space stride between membership epochs. Everything a collective
/// sends in epoch `e` uses tags in
/// `[COLLECTIVE_TAG_BASE + e·stride, COLLECTIVE_TAG_BASE + (e+1)·stride)`.
pub const EPOCH_TAG_STRIDE: u32 = 4096;

/// ALIVE round-robin tags start here (plus the epoch offset plus the
/// candidate index).
const TAG_ALIVE: u32 = Message::COLLECTIVE_TAG_BASE + 512;
/// Membership-announcement tags start here.
const TAG_MEMBERSHIP: u32 = Message::COLLECTIVE_TAG_BASE + 1024;

/// The collective tag offset of membership epoch `epoch`.
///
/// # Panics
///
/// Panics if the epoch count exceeds the tag space (far beyond any
/// realistic failure count).
pub fn epoch_tag_offset(epoch: u64) -> u32 {
    let off = epoch
        .checked_mul(u64::from(EPOCH_TAG_STRIDE))
        .expect("epoch overflow");
    assert!(
        off < u64::from(u32::MAX - Message::COLLECTIVE_TAG_BASE) - u64::from(EPOCH_TAG_STRIDE),
        "too many membership epochs for the tag space"
    );
    off as u32
}

/// Membership-aware, epoch-stamped gTopKAllReduce: [Algorithm 3] over
/// the `topology`-shaped plan regenerated on `members` (sorted, must
/// contain the caller). With the full membership at epoch 0 and the
/// binomial topology this is identical to [`crate::gtopk_all_reduce`].
///
/// # Errors
///
/// Propagates transport errors — including [`CommError::Disconnected`] /
/// [`CommError::Aborted`] when a member failed, which the caller should
/// answer with [`recover`].
pub fn ft_gtopk_all_reduce(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    k: usize,
    topology: Topology,
) -> Result<(SparseVec, Mask)> {
    let off = epoch_tag_offset(comm.epoch());
    let (global, mask, rejected) = gtopk_all_reduce_over(comm, members, local, k, off, topology)?;
    comm.pool().put_sparse(rejected);
    Ok((global, mask))
}

/// Membership-aware, epoch-stamped variant of
/// [`crate::gtopk_all_reduce_with_feedback`]: additionally returns the
/// entries this rank's tree merges truncated away, so error feedback
/// stays exact across a shrink-and-continue membership change.
///
/// # Errors
///
/// As for [`ft_gtopk_all_reduce`].
pub fn ft_gtopk_all_reduce_with_feedback(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    k: usize,
    topology: Topology,
) -> Result<(SparseVec, Mask, SparseVec)> {
    let off = epoch_tag_offset(comm.epoch());
    gtopk_all_reduce_over(comm, members, local, k, off, topology)
}

/// The outcome of a survivor-agreement round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The agreed survivor set, sorted, including the caller.
    pub members: Vec<usize>,
    /// The common checkpoint iteration every survivor must roll back to
    /// (the minimum of the survivors' latest checkpoints — checkpoints
    /// are taken at a fixed cadence, so ranks can be at most one
    /// checkpoint boundary apart when a failure hits).
    pub rollback_iter: u64,
}

/// Runs the full recovery protocol after a detected failure: revoke the
/// current epoch towards every previous member, bump the epoch, purge the
/// revoked epoch's traffic, and agree on the survivor set and rollback
/// point with the other survivors.
///
/// `my_ckpt_iter` is this rank's latest checkpoint iteration; the agreed
/// [`Recovery::rollback_iter`] is the minimum over all survivors.
///
/// # Errors
///
/// [`CommError::Disconnected`] / [`CommError::Timeout`] when no candidate
/// coordinator could be reached at all — the caller cannot continue and
/// should terminate (it has effectively been expelled).
pub fn recover(
    comm: &mut Communicator,
    prev_members: &[usize],
    my_ckpt_iter: u64,
) -> Result<Recovery> {
    assert!(
        prev_members.len() as u32 <= TAG_MEMBERSHIP - TAG_ALIVE,
        "member count exceeds the agreement tag space"
    );
    let revoked_epoch = comm.epoch();
    // Entering recovery ALWAYS starts by revoking everyone: this is what
    // guarantees no rank stays blocked waiting for us.
    for &m in prev_members {
        comm.revoke(m, revoked_epoch);
    }
    let epoch = revoked_epoch + 1;
    comm.set_epoch(epoch);
    purge_revoked_epochs(comm, epoch);
    agree_survivors(comm, prev_members, my_ckpt_iter)
}

/// Drops all buffered traffic belonging to epochs before `epoch`:
/// epoch-stamped collective payloads and stale revokes.
fn purge_revoked_epochs(comm: &mut Communicator, epoch: u64) {
    let fresh_base = Message::COLLECTIVE_TAG_BASE + epoch_tag_offset(epoch);
    comm.purge_pending(|m| {
        if m.tag == Message::REVOKE_TAG {
            return match m.payload {
                Payload::Scalar(e) => (e as u64) < epoch,
                _ => false,
            };
        }
        m.tag >= Message::COLLECTIVE_TAG_BASE && m.tag < fresh_base
    });
}

/// The agreement round of [`recover`] (already at the new epoch).
fn agree_survivors(
    comm: &mut Communicator,
    prev_members: &[usize],
    my_ckpt_iter: u64,
) -> Result<Recovery> {
    let off = epoch_tag_offset(comm.epoch());
    let me = comm.rank();
    let timeout = comm.recovery_timeout_ms();
    let mut last_err = CommError::timeout(me);
    for (idx, &candidate) in prev_members.iter().enumerate() {
        let tag_alive = TAG_ALIVE + off + idx as u32;
        let tag_member = TAG_MEMBERSHIP + off + idx as u32;
        if candidate == me {
            // Coordinator: collect ALIVE from every other previous
            // member. Dead members answer with an immediate
            // `Disconnected` (their channels are closed); unreachable
            // ones time out and are excluded.
            let mut members = vec![me];
            let mut rollback_iter = my_ckpt_iter;
            for &m in prev_members {
                if m == me {
                    continue;
                }
                match comm.recv_deadline(m, tag_alive, timeout) {
                    Ok(msg) => {
                        rollback_iter = rollback_iter.min(msg.payload.into_scalar() as u64);
                        members.push(m);
                    }
                    Err(_) => continue, // dead or unreachable: excluded
                }
            }
            members.sort_unstable();
            // Announce the agreed membership + rollback point.
            let mut wire: Vec<f32> = Vec::with_capacity(members.len() + 1);
            wire.push(rollback_iter as f32);
            wire.extend(members.iter().map(|&r| r as f32));
            let wire = std::sync::Arc::new(wire);
            for &m in &members {
                if m == me {
                    continue;
                }
                // A member that died between its ALIVE and now just
                // misses the announcement; it is still listed, and the
                // next failure detection will shrink it out.
                let _ = comm.send(m, tag_member, Payload::dense_shared(wire.clone()));
            }
            return Ok(Recovery {
                members,
                rollback_iter,
            });
        }
        // Worker: report liveness to the candidate, then wait for the
        // membership announcement. Either step failing means the
        // candidate is dead or unreachable — walk on to the next one.
        if let Err(e) = comm.send(candidate, tag_alive, Payload::Scalar(my_ckpt_iter as f64)) {
            last_err = e;
            continue;
        }
        match comm.recv_deadline(candidate, tag_member, timeout) {
            Ok(msg) => {
                let wire = msg.payload.into_dense();
                let rollback_iter = wire[0] as u64;
                let members: Vec<usize> = wire[1..].iter().map(|&r| r as usize).collect();
                debug_assert!(members.contains(&me));
                return Ok(Recovery {
                    members,
                    rollback_iter,
                });
            }
            Err(e) => {
                last_err = e;
                continue;
            }
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel, FaultPlan};
    use gtopk_sparse::topk_sparse;

    fn worker_grad(r: usize, dim: usize, seed: u64) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = (i as u64 + 1)
                    .wrapping_mul(r as u64 + seed + 1)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn ft_allreduce_matches_plain_on_full_membership() {
        for p in [2usize, 3, 4, 5, 8] {
            let members: Vec<usize> = (0..p).collect();
            let members_ref = &members;
            let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let g = worker_grad(comm.rank(), 64, 7);
                let local = topk_sparse(&g, 4);
                let plain = crate::gtopk_all_reduce(comm, local.clone(), 4).unwrap();
                let ft =
                    ft_gtopk_all_reduce(comm, members_ref, local, 4, Topology::Binomial).unwrap();
                (plain, ft)
            });
            for ((pv, pm), (fv, fm)) in out {
                assert_eq!(pv, fv, "P={p}");
                assert_eq!(pm, fm);
            }
        }
    }

    #[test]
    fn ft_allreduce_over_a_shrunk_membership() {
        // 5 ranks, rank 2 "dead" (never participates): the other four run
        // the collective over the shrunk member set and agree — for every
        // plan topology.
        for topo in Topology::ALL {
            let members = vec![0usize, 1, 3, 4];
            let members_ref = &members;
            let out = Cluster::new(5, CostModel::zero()).run(move |comm| {
                if comm.rank() == 2 {
                    return None;
                }
                let g = worker_grad(comm.rank(), 64, 3);
                let local = topk_sparse(&g, 4);
                Some(ft_gtopk_all_reduce(comm, members_ref, local, 4, topo).unwrap())
            });
            let (first, _) = out[0].clone().unwrap();
            assert!(first.nnz() <= 4 && first.nnz() > 0);
            for (r, o) in out.iter().enumerate() {
                match o {
                    None => assert_eq!(r, 2),
                    Some((v, _)) => assert_eq!(v, &first, "{} rank {r}", topo.name()),
                }
            }
        }
    }

    #[test]
    fn epoch_stamped_tags_separate_generations() {
        // The same collective at two different epochs must not cross
        // traffic: run epoch 0, bump, run epoch 1 with different data.
        let members = vec![0usize, 1, 2, 3];
        let members_ref = &members;
        let out = Cluster::new(4, CostModel::zero()).run(move |comm| {
            let g0 = worker_grad(comm.rank(), 32, 1);
            let r0 = ft_gtopk_all_reduce(
                comm,
                members_ref,
                topk_sparse(&g0, 3),
                3,
                Topology::Binomial,
            )
            .unwrap();
            comm.set_epoch(1);
            let g1 = worker_grad(comm.rank(), 32, 2);
            let r1 = ft_gtopk_all_reduce(
                comm,
                members_ref,
                topk_sparse(&g1, 3),
                3,
                Topology::Binomial,
            )
            .unwrap();
            (r0, r1)
        });
        for (r0, r1) in &out {
            assert_eq!(r0.0, out[0].0 .0);
            assert_eq!(r1.0, out[0].1 .0);
            assert_ne!(r0.0, r1.0, "different inputs must give different sums");
        }
    }

    #[test]
    fn recovery_agrees_on_survivors_and_min_checkpoint() {
        // Rank 1 crashes at step 0; the others detect it in the
        // collective, recover, and agree on {0, 2, 3} with the minimum
        // checkpoint. Checkpoint iters differ per rank on purpose.
        let out = Cluster::new(4, CostModel::zero())
            .with_fault_plan(FaultPlan::seeded(5).with_crash(1, 0))
            .run(|comm| {
                if comm.begin_step().is_err() {
                    return None; // rank 1 dies silently
                }
                let members: Vec<usize> = (0..4).collect();
                let g = worker_grad(comm.rank(), 32, 1);
                let local = topk_sparse(&g, 3);
                let err = ft_gtopk_all_reduce(comm, &members, local, 3, Topology::Binomial)
                    .expect_err("collective over a dead member must fail");
                assert!(
                    matches!(
                        err,
                        CommError::Disconnected { .. }
                            | CommError::Aborted { .. }
                            | CommError::Timeout { .. }
                    ),
                    "unexpected error {err}"
                );
                let ckpt = 10 + comm.rank() as u64; // min is rank 0's 10
                Some(recover(comm, &members, ckpt).unwrap())
            });
        for (r, o) in out.iter().enumerate() {
            match o {
                None => assert_eq!(r, 1),
                Some(rec) => {
                    assert_eq!(rec.members, vec![0, 2, 3], "rank {r}");
                    assert_eq!(rec.rollback_iter, 10);
                }
            }
        }
    }

    #[test]
    fn recovery_cascades_to_the_next_candidate_when_rank0_dies() {
        // The lowest rank is the crashed one, so the coordinator role
        // falls to rank 1.
        let out = Cluster::new(4, CostModel::zero())
            .with_fault_plan(FaultPlan::seeded(6).with_crash(0, 0))
            .run(|comm| {
                if comm.begin_step().is_err() {
                    return None;
                }
                let members: Vec<usize> = (0..4).collect();
                let g = worker_grad(comm.rank(), 32, 2);
                let local = topk_sparse(&g, 3);
                ft_gtopk_all_reduce(comm, &members, local, 3, Topology::Binomial)
                    .expect_err("collective over a dead member must fail");
                Some(recover(comm, &members, 7).unwrap())
            });
        for (r, o) in out.iter().enumerate() {
            match o {
                None => assert_eq!(r, 0),
                Some(rec) => {
                    assert_eq!(rec.members, vec![1, 2, 3], "rank {r}");
                    assert_eq!(rec.rollback_iter, 7);
                }
            }
        }
    }

    #[test]
    fn collective_works_after_recovery() {
        // End-to-end shrink-and-continue at the collective level: fail,
        // recover, and run the next epoch-stamped collectives over the
        // survivors — regenerating the plan for every topology.
        let out = Cluster::new(4, CostModel::zero())
            .with_fault_plan(FaultPlan::seeded(8).with_crash(2, 0))
            .run(|comm| {
                if comm.begin_step().is_err() {
                    return None;
                }
                let members: Vec<usize> = (0..4).collect();
                let g = worker_grad(comm.rank(), 48, 4);
                let local = topk_sparse(&g, 4);
                ft_gtopk_all_reduce(comm, &members, local.clone(), 4, Topology::Binomial)
                    .expect_err("must fail with rank 2 dead");
                let rec = recover(comm, &members, 0).unwrap();
                assert_eq!(rec.members, vec![0, 1, 3]);
                let results: Vec<_> = Topology::ALL
                    .iter()
                    .map(|&topo| {
                        ft_gtopk_all_reduce(comm, &rec.members, local.clone(), 4, topo).unwrap()
                    })
                    .collect();
                Some(results)
            });
        let first = out[0].clone().unwrap();
        assert!(first.iter().all(|(v, _)| v.nnz() > 0));
        for (r, o) in out.iter().enumerate() {
            match o {
                None => assert_eq!(r, 2),
                Some(results) => {
                    for (t, ((v, _), (fv, _))) in results.iter().zip(first.iter()).enumerate() {
                        assert_eq!(v, fv, "topology {t} rank {r}");
                    }
                }
            }
        }
    }
}
