//! gTopKAllReduce — the paper's Algorithm 3 — and its AllGather-based
//! reference, Algorithm 2.
//!
//! The reduction and broadcast phases are plan executions: the schedule
//! comes from [`CollectivePlan::reduce`] / [`CollectivePlan::broadcast`]
//! for a chosen [`Topology`], so the same algorithm runs over the
//! paper's binomial tree, a two-level hierarchy, or a chain ring — and
//! fault-tolerant callers regenerate the plan over the survivor set.

use crate::sparse_coll::{sparse_broadcast_over, sparse_sum_recursive_doubling};
use gtopk_comm::{
    execute_plan, CollectivePlan, Communicator, Message, Payload, PlanOps, Result, Topology,
};
use gtopk_sparse::{topk_merge_split_into, topk_sparse, Mask, MergeScratch, SparseVec};

/// Tree-reduction plan tag window (one tag per round; fault-tolerant
/// callers add the epoch offset).
const TAG_TREE: u32 = Message::COLLECTIVE_TAG_BASE + 256;

/// gTopKAllReduce (paper **Algorithm 3**).
///
/// A binomial-tree reduction under the top-k merge operator `⊤`
/// (Definition 1): `⌈log₂P⌉` rounds in which half the active ranks send
/// their k-sparse vector to a partner that merges and re-truncates to `k`,
/// leaving rank 0 with `G̃ = G̃₁ ⊤ G̃₂ ⊤ … ⊤ G̃_P`; a binomial-tree
/// broadcast then delivers `G̃` and its selection [`Mask`] to every rank.
/// Per-rank cost: `2·log₂P·α + 4k·log₂P·β` (paper Eq. 7).
///
/// Non-power-of-two cluster sizes (which the paper leaves out of scope)
/// are handled by folding the extra ranks into the low ranks with one
/// additional `⊤` before the tree.
///
/// The returned vector holds the *merged sums* of the surviving
/// coordinates — note that, exactly as in the paper's algorithm, a
/// contribution can be truncated at an interior tree node even when its
/// coordinate survives elsewhere, so values lower-bound the exact sparse
/// sum. See [`gtopk_all_reduce_with_feedback`] for the loss-free
/// extension.
///
/// # Errors
///
/// Propagates transport errors.
pub fn gtopk_all_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, Mask)> {
    gtopk_all_reduce_topo(comm, local, k, Topology::Binomial)
}

/// [`gtopk_all_reduce`] over an explicit plan [`Topology`] — binomial
/// tree (the paper's shape), two-level hierarchy, or chain ring. All
/// topologies return the same set-consistent global top-k on every rank;
/// the schedule (and therefore the α-β cost) is what changes.
///
/// # Errors
///
/// Propagates transport errors.
pub fn gtopk_all_reduce_topo(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
    topology: Topology,
) -> Result<(SparseVec, Mask)> {
    let members: Vec<usize> = (0..comm.size()).collect();
    let (global, mask, rejected) = gtopk_all_reduce_over(comm, &members, local, k, 0, topology)?;
    comm.pool().put_sparse(rejected); // not needed by this variant — recycle
    Ok((global, mask))
}

/// gTopKAllReduce with per-merge rejection feedback (extension).
///
/// Identical communication pattern and cost to [`gtopk_all_reduce`], but
/// each receiving rank keeps the entries its local `⊤` merges truncated
/// away. The second return value holds those rejected entries so the
/// caller can credit them back into its residual — making the *global*
/// error-feedback exact: summed over all ranks,
/// `applied update + residual increments == Σ local contributions`.
///
/// # Errors
///
/// Propagates transport errors.
pub fn gtopk_all_reduce_with_feedback(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, Mask, SparseVec)> {
    let members: Vec<usize> = (0..comm.size()).collect();
    // Entries rejected at this rank's merges that did not make the final
    // selection anyway. (Entries rejected here but re-introduced by some
    // other branch and globally selected are *partially* represented in
    // the result; we still return them so no mass is dropped — the update
    // under-counted them.)
    gtopk_all_reduce_over(comm, &members, local, k, 0, Topology::Binomial)
}

/// The single general gTopKAllReduce entry: membership-aware,
/// tag-offsettable, topology-parameterized. Runs the `⊤`-reduction plan
/// over `members` (a sorted subset of ranks that must include the
/// caller), then the matching broadcast plan from the reduction's root
/// position. Returns `(global top-k, mask, this rank's merge rejects)`.
///
/// Every specialized variant — [`gtopk_all_reduce`],
/// [`gtopk_all_reduce_with_feedback`], and the epoch-stamped
/// fault-tolerant wrappers in [`crate::ft`] — funnels through here, so a
/// shrink-and-continue recovery is literally "regenerate the plan over
/// the survivors".
///
/// # Errors
///
/// Propagates transport errors.
///
/// # Panics
///
/// Panics if the calling rank is not in `members`.
pub fn gtopk_all_reduce_over(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    k: usize,
    tag_off: u32,
    topology: Topology,
) -> Result<(SparseVec, Mask, SparseVec)> {
    let (global, rejected) = tree_reduce_over(comm, members, local, k, tag_off, topology)?;
    let root = members[topology.reduce_root(members.len())];
    let global = sparse_broadcast_over(comm, members, global, root, tag_off, topology)?;
    let mask = Mask::of_sparse(&global);
    Ok((global, mask, rejected))
}

/// The plan-driven tree-reduction phase: the reduce plan's root position
/// ends with the pairwise `⊤` combination of every member's
/// contribution; every rank also accumulates the entries its own merges
/// rejected. `tag_off` shifts the collective tag window (fault-tolerant
/// callers stamp the membership epoch into it); with the full
/// membership, `tag_off == 0` and the binomial topology the message
/// schedule is bit-identical to the historical fixed-topology reduction.
///
/// # Panics
///
/// Panics if the calling rank is not in `members`.
fn tree_reduce_over(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    k: usize,
    tag_off: u32,
    topology: Topology,
) -> Result<(SparseVec, SparseVec)> {
    let p = members.len();
    let me = members
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller must be a member of the reduction group");
    let dim = local.dim();
    // Pooled scratch + double-buffered accumulators serve every `⊤` merge
    // of the plan's rounds; sends *move* the accumulator into the message
    // and receivers retire incoming buffers into their own pool, so the
    // steady-state reduction allocates nothing from the buffer pool.
    struct TreeOps {
        acc: SparseVec,
        scratch: MergeScratch,
        merged: SparseVec,
        round_rej: SparseVec,
        rejected: SparseVec,
        rej_swap: SparseVec,
        dim: usize,
        k: usize,
    }
    impl TreeOps {
        fn merge_in(&mut self, other: &SparseVec) {
            topk_merge_split_into(
                &self.acc,
                other,
                self.k,
                &mut self.scratch,
                &mut self.merged,
                &mut self.round_rej,
            );
            std::mem::swap(&mut self.acc, &mut self.merged);
            self.rejected.add_into(&self.round_rej, &mut self.rej_swap);
            std::mem::swap(&mut self.rejected, &mut self.rej_swap);
        }
    }
    impl PlanOps for TreeOps {
        fn on_send(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            let outgoing = std::mem::replace(&mut self.acc, SparseVec::empty(self.dim));
            comm.send(peer, tag, Payload::sparse(outgoing))
        }
        fn on_recv(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            let other = comm.recv(peer, tag)?.payload.into_sparse();
            self.merge_in(&other);
            comm.pool().put_sparse(other);
            Ok(())
        }
    }
    let mut ops = TreeOps {
        acc: local,
        scratch: comm.pool().take_scratch(),
        merged: comm.pool().take_sparse(dim),
        round_rej: comm.pool().take_sparse(dim),
        rejected: comm.pool().take_sparse(dim),
        rej_swap: comm.pool().take_sparse(dim),
        dim,
        k,
    };
    // Truncate our own contribution to k first (callers normally already
    // did via local top-k selection). Merging with an empty vector is the
    // identity, so the split-merge doubles as a plain split.
    if ops.acc.nnz() > k {
        let empty = SparseVec::empty(dim);
        ops.merge_in(&empty);
    }
    let plan = CollectivePlan::reduce(topology, p);
    execute_plan(
        comm,
        &plan,
        me,
        TAG_TREE + tag_off,
        |pos| members[pos],
        &mut ops,
    )?;
    comm.pool().put_scratch(ops.scratch);
    comm.pool().put_sparse(ops.merged);
    comm.pool().put_sparse(ops.round_rej);
    comm.pool().put_sparse(ops.rej_swap);
    Ok((ops.acc, ops.rejected))
}

/// Naive gTop-k via exact sparse sum (paper **Algorithm 2**).
///
/// Computes the exact sparse sum of all contributions (`O(kP)`
/// communication, the AllGather-equivalent), then selects the true global
/// top-k. Returns `(global top-k of the sum, selection mask)`; every rank
/// gets an identical result.
///
/// # Errors
///
/// Propagates transport errors.
pub fn naive_gtopk_all_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, Mask)> {
    let sum = sparse_sum_recursive_doubling(comm, local)?;
    let dense = sum.to_dense();
    let global = topk_sparse(&dense, k.min(sum.nnz()));
    let mask = Mask::of_sparse(&global);
    Ok((global, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};
    use gtopk_sparse::topk_sparse;
    use proptest::prelude::*;

    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 8, 16];

    /// Deterministic pseudo-gradient for worker `r`.
    fn worker_grad(r: usize, dim: usize, seed: u64) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = (i as u64 + 1)
                    .wrapping_mul(r as u64 + seed + 1)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn all_ranks_get_identical_result() {
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let g = worker_grad(comm.rank(), 64, 7);
                let local = topk_sparse(&g, 4);
                gtopk_all_reduce(comm, local, 4).unwrap()
            });
            let (first, first_mask) = &out[0];
            for (v, m) in &out {
                assert_eq!(v, first, "P={p}");
                assert_eq!(m, first_mask);
            }
            assert!(first.nnz() <= 4);
        }
    }

    #[test]
    fn single_rank_is_identity_topk() {
        let out = Cluster::new(1, CostModel::zero()).run(|comm| {
            let local = SparseVec::from_pairs(8, vec![(1, 3.0), (2, -5.0), (5, 1.0)]);
            gtopk_all_reduce(comm, local, 2).unwrap()
        });
        assert_eq!(out[0].0.indices(), &[1, 2]);
    }

    #[test]
    fn shared_heavy_coordinate_accumulates_exactly() {
        // When all workers select the same coordinates, no truncation can
        // occur and values must equal the exact sum.
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let local = SparseVec::from_pairs(32, vec![(3, 2.0), (9, -1.0)]);
                gtopk_all_reduce(comm, local, 2).unwrap()
            });
            for (v, _) in out {
                assert_eq!(v.indices(), &[3, 9], "P={p}");
                assert!((v.get(3) - 2.0 * p as f32).abs() < 1e-4);
                assert!((v.get(9) + p as f32).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn two_worker_tree_equals_naive() {
        // For P=2 the tree is a single ⊤, identical to the exact global
        // top-k of the sum.
        let out = Cluster::new(2, CostModel::zero()).run(|comm| {
            let g = worker_grad(comm.rank(), 48, 3);
            let local = topk_sparse(&g, 5);
            let tree = gtopk_all_reduce(comm, local.clone(), 5).unwrap();
            let naive = naive_gtopk_all_reduce(comm, local, 5).unwrap();
            (tree, naive)
        });
        for ((tv, tm), (nv, nm)) in out {
            assert_eq!(tv, nv);
            assert_eq!(tm, nm);
        }
    }

    #[test]
    fn naive_matches_dense_reference() {
        for &p in SIZES {
            let dim = 40;
            let k = 6;
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let g = worker_grad(comm.rank(), dim, 11);
                let local = topk_sparse(&g, k);
                naive_gtopk_all_reduce(comm, local, k).unwrap()
            });
            // Dense reference: sum the locally-sparsified gradients.
            let mut sum = vec![0.0f32; dim];
            for r in 0..p {
                let g = worker_grad(r, dim, 11);
                for (i, v) in topk_sparse(&g, k).iter() {
                    sum[i as usize] += v;
                }
            }
            let reference = topk_sparse(&sum, k);
            for (v, _) in out {
                assert_eq!(v.indices(), reference.indices(), "P={p}");
            }
        }
    }

    #[test]
    fn feedback_variant_conserves_mass_globally() {
        for &p in SIZES {
            let dim = 64;
            let k = 3;
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let g = worker_grad(comm.rank(), dim, 5);
                let local = topk_sparse(&g, k);
                let (global, _mask, rejected) =
                    gtopk_all_reduce_with_feedback(comm, local.clone(), k).unwrap();
                (local, global, rejected)
            });
            // Σ locals == global + Σ rejects (the applied update plus what
            // went back into residuals), coordinate-wise.
            let mut total = vec![0.0f64; dim];
            let mut recovered = vec![0.0f64; dim];
            for (r, (local, global, rejected)) in out.iter().enumerate() {
                for (i, v) in local.iter() {
                    total[i as usize] += v as f64;
                }
                for (i, v) in rejected.iter() {
                    recovered[i as usize] += v as f64;
                }
                if r == 0 {
                    for (i, v) in global.iter() {
                        recovered[i as usize] += v as f64;
                    }
                }
            }
            for i in 0..dim {
                assert!(
                    (total[i] - recovered[i]).abs() < 1e-4,
                    "P={p} coord {i}: {} vs {}",
                    total[i],
                    recovered[i]
                );
            }
        }
    }

    #[test]
    fn tree_communication_volume_is_klogp() {
        // Rank 0 must receive exactly 2k elements per tree round and send
        // 2k per broadcast round: O(k log P), not O(kP).
        let p = 16usize;
        let k = 8usize;
        let dim = 4096;
        let stats = Cluster::new(p, CostModel::zero()).run(|comm| {
            let g = worker_grad(comm.rank(), dim, 9);
            let local = topk_sparse(&g, k);
            gtopk_all_reduce(comm, local, k).unwrap();
            comm.stats()
        });
        let lg = 4; // log2(16)
                    // Rank 0: receives lg tree messages (≤2k each), sends 1 broadcast
                    // child message per bcast round... binomial bcast root sends lg
                    // messages of 2k.
        assert!(stats[0].elems_received <= 2 * k * lg);
        assert!(stats[0].elems_sent <= 2 * k * lg);
        // Total volume across ranks is O(k P) for broadcast, but per-rank
        // critical path stays O(k log P).
        for s in &stats {
            assert!(s.elems_sent <= 2 * k * lg, "{s:?}");
        }
    }

    #[test]
    fn sim_time_matches_eq7_shape() {
        // Simulated time for the tree+broadcast must grow ~log P, not ~P.
        let k = 1000usize;
        let dim = 100_000;
        let cost = CostModel::gigabit_ethernet();
        let time_for = |p: usize| {
            let times = Cluster::new(p, cost).run(|comm| {
                let g = worker_grad(comm.rank(), dim, 2);
                let local = topk_sparse(&g, k);
                gtopk_all_reduce(comm, local, k).unwrap();
                comm.now_ms()
            });
            times.into_iter().fold(0.0f64, f64::max)
        };
        let t4 = time_for(4);
        let t16 = time_for(16);
        // Eq. 7 ratio: log2(16)/log2(4) = 2. Allow slack for partial fills.
        assert!(t16 / t4 < 2.5, "t4={t4} t16={t16}");
        assert!(t16 > t4, "more rounds must cost more");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Invariants for arbitrary inputs and any cluster size:
        /// result is consistent, ≤ k entries, and its coordinates'
        /// magnitudes are ≥ those of any coordinate every rank rejected.
        #[test]
        fn prop_gtopk_invariants(p in 1usize..9, k in 1usize..6, seed in 0u64..30) {
            let dim = 32;
            let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let g = worker_grad(comm.rank(), dim, seed);
                let local = topk_sparse(&g, k);
                gtopk_all_reduce(comm, local, k).unwrap()
            });
            let (first, _) = &out[0];
            prop_assert!(first.nnz() <= k);
            for (v, m) in &out {
                prop_assert_eq!(v, first);
                prop_assert_eq!(m.len(), first.nnz());
            }
        }
    }
}
