//! gTopKAllReduce — the paper's Algorithm 3 — and its AllGather-based
//! reference, Algorithm 2.

use crate::sparse_coll::{sparse_broadcast, sparse_sum_recursive_doubling};
use gtopk_comm::{Communicator, Message, Payload, Result};
use gtopk_sparse::{topk_merge_split_into, topk_sparse, Mask, SparseVec};

const TAG_TREE: u32 = Message::COLLECTIVE_TAG_BASE + 64;
const TAG_TREE_FOLD: u32 = Message::COLLECTIVE_TAG_BASE + 65;

/// gTopKAllReduce (paper **Algorithm 3**).
///
/// A binomial-tree reduction under the top-k merge operator `⊤`
/// (Definition 1): `⌈log₂P⌉` rounds in which half the active ranks send
/// their k-sparse vector to a partner that merges and re-truncates to `k`,
/// leaving rank 0 with `G̃ = G̃₁ ⊤ G̃₂ ⊤ … ⊤ G̃_P`; a binomial-tree
/// broadcast then delivers `G̃` and its selection [`Mask`] to every rank.
/// Per-rank cost: `2·log₂P·α + 4k·log₂P·β` (paper Eq. 7).
///
/// Non-power-of-two cluster sizes (which the paper leaves out of scope)
/// are handled by folding the extra ranks into the low ranks with one
/// additional `⊤` before the tree.
///
/// The returned vector holds the *merged sums* of the surviving
/// coordinates — note that, exactly as in the paper's algorithm, a
/// contribution can be truncated at an interior tree node even when its
/// coordinate survives elsewhere, so values lower-bound the exact sparse
/// sum. See [`gtopk_all_reduce_with_feedback`] for the loss-free
/// extension.
///
/// # Errors
///
/// Propagates transport errors.
pub fn gtopk_all_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, Mask)> {
    let (global, rejected) = tree_reduce(comm, local, k)?;
    comm.pool().put_sparse(rejected); // not needed by this variant — recycle
    let global = sparse_broadcast(comm, global, 0)?;
    let mask = Mask::of_sparse(&global);
    Ok((global, mask))
}

/// gTopKAllReduce with per-merge rejection feedback (extension).
///
/// Identical communication pattern and cost to [`gtopk_all_reduce`], but
/// each receiving rank keeps the entries its local `⊤` merges truncated
/// away. The second return value holds those rejected entries so the
/// caller can credit them back into its residual — making the *global*
/// error-feedback exact: summed over all ranks,
/// `applied update + residual increments == Σ local contributions`.
///
/// # Errors
///
/// Propagates transport errors.
pub fn gtopk_all_reduce_with_feedback(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, Mask, SparseVec)> {
    let (global, rejected) = tree_reduce(comm, local, k)?;
    let global = sparse_broadcast(comm, global, 0)?;
    let mask = Mask::of_sparse(&global);
    // Entries rejected at this rank's merges that did not make the final
    // selection anyway. (Entries rejected here but re-introduced by some
    // other branch and globally selected are *partially* represented in
    // the result; we still return them so no mass is dropped — the update
    // under-counted them.)
    Ok((global, mask, rejected))
}

/// The tree-reduction phase shared by both variants: rank 0 ends with the
/// left-fold-by-pairs `⊤` result; every rank also accumulates the entries
/// its own merges rejected.
fn tree_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, SparseVec)> {
    let members: Vec<usize> = (0..comm.size()).collect();
    tree_reduce_over(comm, &members, local, k, 0)
}

/// Membership-aware tree reduction: the binomial tree is built over
/// `members` (a sorted subset of ranks that must include the caller),
/// with each member addressed by its *position* in the list — this is how
/// fault-tolerant runs rebuild the tree over the survivors after a crash.
/// `tag_off` shifts the collective tags (fault-tolerant callers stamp the
/// membership epoch into it); with the full membership and `tag_off == 0`
/// the message schedule is bit-identical to the original fixed-topology
/// reduction. The merged result lands on `members[0]`.
///
/// # Panics
///
/// Panics if the calling rank is not in `members`.
pub(crate) fn tree_reduce_over(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    k: usize,
    tag_off: u32,
) -> Result<(SparseVec, SparseVec)> {
    let p = members.len();
    let rank = members
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller must be a member of the reduction group");
    let dim = local.dim();
    // Pooled scratch + double-buffered accumulators serve every `⊤` merge
    // of the O(log P) rounds; sends *move* the accumulator into the
    // message and receivers retire incoming buffers into their own pool,
    // so the steady-state reduction allocates nothing.
    let mut scratch = comm.pool().take_scratch();
    let mut merged = comm.pool().take_sparse(dim);
    let mut round_rej = comm.pool().take_sparse(dim);
    let mut rejected = comm.pool().take_sparse(dim);
    let mut rej_swap = comm.pool().take_sparse(dim);
    let retire = |comm: &mut Communicator,
                  scratch: gtopk_sparse::MergeScratch,
                  a: SparseVec,
                  b: SparseVec,
                  c: SparseVec| {
        comm.pool().put_scratch(scratch);
        comm.pool().put_sparse(a);
        comm.pool().put_sparse(b);
        comm.pool().put_sparse(c);
    };
    // Truncate our own contribution to k first (callers normally already
    // did via local top-k selection). Merging with an empty vector is the
    // identity, so the split-merge doubles as a plain split.
    let mut acc = local;
    if acc.nnz() > k {
        let empty = SparseVec::empty(dim);
        topk_merge_split_into(&acc, &empty, k, &mut scratch, &mut merged, &mut round_rej);
        std::mem::swap(&mut acc, &mut merged);
        rejected.add_into(&round_rej, &mut rej_swap);
        std::mem::swap(&mut rejected, &mut rej_swap);
    }

    let mut p2 = 1usize;
    while p2 * 2 <= p {
        p2 *= 2;
    }
    let extra = p - p2;
    // Fold-in of extra ranks.
    if rank >= p2 {
        comm.send(
            members[rank - p2],
            TAG_TREE_FOLD + tag_off,
            Payload::sparse(acc),
        )?;
        retire(comm, scratch, merged, round_rej, rej_swap);
        return Ok((SparseVec::empty(dim), rejected));
    }
    if rank < extra {
        let other = comm
            .recv(members[rank + p2], TAG_TREE_FOLD + tag_off)?
            .payload
            .into_sparse();
        topk_merge_split_into(&acc, &other, k, &mut scratch, &mut merged, &mut round_rej);
        std::mem::swap(&mut acc, &mut merged);
        rejected.add_into(&round_rej, &mut rej_swap);
        std::mem::swap(&mut rejected, &mut rej_swap);
        comm.pool().put_sparse(other);
    }
    // Binomial tree over the power-of-two core.
    let mut mask = 1usize;
    while mask < p2 {
        if rank & mask == 0 {
            let src = rank | mask;
            if src < p2 {
                let other = comm
                    .recv(members[src], TAG_TREE + tag_off + mask as u32)?
                    .payload
                    .into_sparse();
                topk_merge_split_into(&acc, &other, k, &mut scratch, &mut merged, &mut round_rej);
                std::mem::swap(&mut acc, &mut merged);
                rejected.add_into(&round_rej, &mut rej_swap);
                std::mem::swap(&mut rejected, &mut rej_swap);
                comm.pool().put_sparse(other);
            }
        } else {
            let dst = rank & !mask;
            let outgoing = std::mem::replace(&mut acc, SparseVec::empty(dim));
            comm.send(
                members[dst],
                TAG_TREE + tag_off + mask as u32,
                Payload::sparse(outgoing),
            )?;
            break;
        }
        mask <<= 1;
    }
    retire(comm, scratch, merged, round_rej, rej_swap);
    Ok((acc, rejected))
}

/// Naive gTop-k via exact sparse sum (paper **Algorithm 2**).
///
/// Computes the exact sparse sum of all contributions (`O(kP)`
/// communication, the AllGather-equivalent), then selects the true global
/// top-k. Returns `(global top-k of the sum, selection mask)`; every rank
/// gets an identical result.
///
/// # Errors
///
/// Propagates transport errors.
pub fn naive_gtopk_all_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, Mask)> {
    let sum = sparse_sum_recursive_doubling(comm, local)?;
    let dense = sum.to_dense();
    let global = topk_sparse(&dense, k.min(sum.nnz()));
    let mask = Mask::of_sparse(&global);
    Ok((global, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};
    use gtopk_sparse::topk_sparse;
    use proptest::prelude::*;

    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 8, 16];

    /// Deterministic pseudo-gradient for worker `r`.
    fn worker_grad(r: usize, dim: usize, seed: u64) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = (i as u64 + 1)
                    .wrapping_mul(r as u64 + seed + 1)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn all_ranks_get_identical_result() {
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let g = worker_grad(comm.rank(), 64, 7);
                let local = topk_sparse(&g, 4);
                gtopk_all_reduce(comm, local, 4).unwrap()
            });
            let (first, first_mask) = &out[0];
            for (v, m) in &out {
                assert_eq!(v, first, "P={p}");
                assert_eq!(m, first_mask);
            }
            assert!(first.nnz() <= 4);
        }
    }

    #[test]
    fn single_rank_is_identity_topk() {
        let out = Cluster::new(1, CostModel::zero()).run(|comm| {
            let local = SparseVec::from_pairs(8, vec![(1, 3.0), (2, -5.0), (5, 1.0)]);
            gtopk_all_reduce(comm, local, 2).unwrap()
        });
        assert_eq!(out[0].0.indices(), &[1, 2]);
    }

    #[test]
    fn shared_heavy_coordinate_accumulates_exactly() {
        // When all workers select the same coordinates, no truncation can
        // occur and values must equal the exact sum.
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let local = SparseVec::from_pairs(32, vec![(3, 2.0), (9, -1.0)]);
                gtopk_all_reduce(comm, local, 2).unwrap()
            });
            for (v, _) in out {
                assert_eq!(v.indices(), &[3, 9], "P={p}");
                assert!((v.get(3) - 2.0 * p as f32).abs() < 1e-4);
                assert!((v.get(9) + p as f32).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn two_worker_tree_equals_naive() {
        // For P=2 the tree is a single ⊤, identical to the exact global
        // top-k of the sum.
        let out = Cluster::new(2, CostModel::zero()).run(|comm| {
            let g = worker_grad(comm.rank(), 48, 3);
            let local = topk_sparse(&g, 5);
            let tree = gtopk_all_reduce(comm, local.clone(), 5).unwrap();
            let naive = naive_gtopk_all_reduce(comm, local, 5).unwrap();
            (tree, naive)
        });
        for ((tv, tm), (nv, nm)) in out {
            assert_eq!(tv, nv);
            assert_eq!(tm, nm);
        }
    }

    #[test]
    fn naive_matches_dense_reference() {
        for &p in SIZES {
            let dim = 40;
            let k = 6;
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let g = worker_grad(comm.rank(), dim, 11);
                let local = topk_sparse(&g, k);
                naive_gtopk_all_reduce(comm, local, k).unwrap()
            });
            // Dense reference: sum the locally-sparsified gradients.
            let mut sum = vec![0.0f32; dim];
            for r in 0..p {
                let g = worker_grad(r, dim, 11);
                for (i, v) in topk_sparse(&g, k).iter() {
                    sum[i as usize] += v;
                }
            }
            let reference = topk_sparse(&sum, k);
            for (v, _) in out {
                assert_eq!(v.indices(), reference.indices(), "P={p}");
            }
        }
    }

    #[test]
    fn feedback_variant_conserves_mass_globally() {
        for &p in SIZES {
            let dim = 64;
            let k = 3;
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let g = worker_grad(comm.rank(), dim, 5);
                let local = topk_sparse(&g, k);
                let (global, _mask, rejected) =
                    gtopk_all_reduce_with_feedback(comm, local.clone(), k).unwrap();
                (local, global, rejected)
            });
            // Σ locals == global + Σ rejects (the applied update plus what
            // went back into residuals), coordinate-wise.
            let mut total = vec![0.0f64; dim];
            let mut recovered = vec![0.0f64; dim];
            for (r, (local, global, rejected)) in out.iter().enumerate() {
                for (i, v) in local.iter() {
                    total[i as usize] += v as f64;
                }
                for (i, v) in rejected.iter() {
                    recovered[i as usize] += v as f64;
                }
                if r == 0 {
                    for (i, v) in global.iter() {
                        recovered[i as usize] += v as f64;
                    }
                }
            }
            for i in 0..dim {
                assert!(
                    (total[i] - recovered[i]).abs() < 1e-4,
                    "P={p} coord {i}: {} vs {}",
                    total[i],
                    recovered[i]
                );
            }
        }
    }

    #[test]
    fn tree_communication_volume_is_klogp() {
        // Rank 0 must receive exactly 2k elements per tree round and send
        // 2k per broadcast round: O(k log P), not O(kP).
        let p = 16usize;
        let k = 8usize;
        let dim = 4096;
        let stats = Cluster::new(p, CostModel::zero()).run(|comm| {
            let g = worker_grad(comm.rank(), dim, 9);
            let local = topk_sparse(&g, k);
            gtopk_all_reduce(comm, local, k).unwrap();
            comm.stats()
        });
        let lg = 4; // log2(16)
                    // Rank 0: receives lg tree messages (≤2k each), sends 1 broadcast
                    // child message per bcast round... binomial bcast root sends lg
                    // messages of 2k.
        assert!(stats[0].elems_received <= 2 * k * lg);
        assert!(stats[0].elems_sent <= 2 * k * lg);
        // Total volume across ranks is O(k P) for broadcast, but per-rank
        // critical path stays O(k log P).
        for s in &stats {
            assert!(s.elems_sent <= 2 * k * lg, "{s:?}");
        }
    }

    #[test]
    fn sim_time_matches_eq7_shape() {
        // Simulated time for the tree+broadcast must grow ~log P, not ~P.
        let k = 1000usize;
        let dim = 100_000;
        let cost = CostModel::gigabit_ethernet();
        let time_for = |p: usize| {
            let times = Cluster::new(p, cost).run(|comm| {
                let g = worker_grad(comm.rank(), dim, 2);
                let local = topk_sparse(&g, k);
                gtopk_all_reduce(comm, local, k).unwrap();
                comm.now_ms()
            });
            times.into_iter().fold(0.0f64, f64::max)
        };
        let t4 = time_for(4);
        let t16 = time_for(16);
        // Eq. 7 ratio: log2(16)/log2(4) = 2. Allow slack for partial fills.
        assert!(t16 / t4 < 2.5, "t4={t4} t16={t16}");
        assert!(t16 > t4, "more rounds must cost more");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Invariants for arbitrary inputs and any cluster size:
        /// result is consistent, ≤ k entries, and its coordinates'
        /// magnitudes are ≥ those of any coordinate every rank rejected.
        #[test]
        fn prop_gtopk_invariants(p in 1usize..9, k in 1usize..6, seed in 0u64..30) {
            let dim = 32;
            let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let g = worker_grad(comm.rank(), dim, seed);
                let local = topk_sparse(&g, k);
                gtopk_all_reduce(comm, local, k).unwrap()
            });
            let (first, _) = &out[0];
            prop_assert!(first.nnz() <= k);
            for (v, m) in &out {
                prop_assert_eq!(v, first);
                prop_assert_eq!(m.len(), first.nnz());
            }
        }
    }
}
