//! Sparse collectives built on the simulated MPI substrate.
//!
//! The dense collectives in `gtopk_comm` cannot carry irregularly-indexed
//! sparse gradients (the exact difficulty the paper describes in §II-E),
//! so the sparse variants live here, next to the algorithms that need
//! them. Like their dense cousins they are *plan executions*: the round
//! schedule comes from [`CollectivePlan`] generators and runs through
//! [`execute_plan`], so the broadcast tree shape is a [`Topology`]
//! parameter and fault-tolerant callers rebuild the schedule over
//! survivors by re-generating the plan with a different position→rank
//! mapping.

use gtopk_comm::collectives::largest_power_of_two_leq;
use gtopk_comm::{
    execute_plan, CollectivePlan, Communicator, Message, Payload, PlanOps, Result, Topology,
};
use gtopk_perfmodel::ZooSchedule;
use gtopk_sparse::{topk_merge_split_into, MergeScratch, SparseVec};
use std::sync::Arc;

// Plan tag windows (one tag per round). Fault-tolerant callers add the
// epoch offset (a multiple of `EPOCH_TAG_STRIDE` = 4096), so each window
// must fit between its base and the next within a 4096-wide epoch.
const TAG_SBCAST: u32 = Message::COLLECTIVE_TAG_BASE + 1536;
const TAG_SSUM: u32 = Message::COLLECTIVE_TAG_BASE + 1792;
const TAG_ZOO_SPLIT: u32 = Message::COLLECTIVE_TAG_BASE + 2048;
const TAG_ZOO_GATHER: u32 = Message::COLLECTIVE_TAG_BASE + 2304;

/// Binomial-tree broadcast of a sparse vector from `root`.
///
/// Non-root ranks pass any placeholder (e.g. `SparseVec::empty(dim)`); the
/// root's vector is returned on every rank. This is the second phase of
/// gTopKAllReduce (Algorithm 3, line 19), costing
/// `⌈log₂P⌉·(α + 2kβ)` — the paper's `log(P)α + 2k·log(P)β` term.
///
/// # Errors
///
/// Propagates transport errors; rejects an invalid root rank.
pub fn sparse_broadcast(
    comm: &mut Communicator,
    local: SparseVec,
    root: usize,
) -> Result<SparseVec> {
    let p = comm.size();
    if root >= p {
        return Err(gtopk_comm::CommError::InvalidRank {
            rank: root,
            size: p,
        });
    }
    let members: Vec<usize> = (0..p).collect();
    sparse_broadcast_over(comm, &members, local, root, 0, Topology::Binomial)
}

/// Membership-aware broadcast over a plan: the `topology`-shaped tree is
/// built over `members` (a sorted subset of ranks that must include the
/// caller and `root`), addressing members by position — the
/// fault-tolerant counterpart of [`sparse_broadcast`]. `tag_off` shifts
/// the collective tag window (epoch-stamped by fault-tolerant callers);
/// with the full membership, `tag_off == 0` and the binomial topology the
/// schedule is bit-identical to the historical fixed-topology broadcast.
///
/// # Errors
///
/// Propagates transport errors; rejects a root outside `members`.
///
/// # Panics
///
/// Panics if the calling rank is not in `members`.
pub(crate) fn sparse_broadcast_over(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    root: usize,
    tag_off: u32,
    topology: Topology,
) -> Result<SparseVec> {
    let p = members.len();
    let me = members
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller must be a member of the broadcast group");
    let Some(root_pos) = members.iter().position(|&r| r == root) else {
        return Err(gtopk_comm::CommError::InvalidRank {
            rank: root,
            size: comm.size(),
        });
    };
    if p == 1 {
        return Ok(local);
    }
    // One Arc-shared buffer travels the whole tree: relays forward the
    // reference they received and fan-out sends bump a reference count.
    struct BcastOps {
        shared: Arc<SparseVec>,
    }
    impl PlanOps for BcastOps {
        fn on_send(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            comm.send(peer, tag, Payload::sparse_shared(self.shared.clone()))
        }
        fn on_recv(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            self.shared = comm.recv(peer, tag)?.payload.into_sparse_arc();
            Ok(())
        }
    }
    let plan = CollectivePlan::broadcast(topology, p, root_pos);
    let mut ops = BcastOps {
        shared: Arc::new(local),
    };
    execute_plan(
        comm,
        &plan,
        me,
        TAG_SBCAST + tag_off,
        |pos| members[pos],
        &mut ops,
    )?;
    // Materialize our own copy: free if the reference is unique by now,
    // otherwise copied into pooled buffers (no fresh allocation at steady
    // state).
    Ok(match Arc::try_unwrap(ops.shared) {
        Ok(v) => v,
        Err(shared) => {
            let mut owned = comm.pool().take_sparse(shared.dim());
            owned.copy_from(&shared);
            owned
        }
    })
}

/// Exact sparse sum across all ranks by recursive doubling.
///
/// Every rank contributes a sparse vector and receives the exact (merge-
/// added, untruncated) sum. With each worker contributing `k` non-zeros,
/// round `j` exchanges partial sums of up to `2ʲ·k` non-zeros, so the
/// total per-rank traffic is `2k(P−1)` elements over `log₂P` rounds —
/// exactly the paper's Eq. 6 cost for the AllGather-based TopKAllReduce
/// (which this operation replaces semantically: Algorithm 1 only ever
/// uses the gathered vectors to compute their sum).
///
/// Non-power-of-two sizes fold extra ranks in and out.
///
/// # Errors
///
/// Propagates transport errors.
pub fn sparse_sum_recursive_doubling(
    comm: &mut Communicator,
    local: SparseVec,
) -> Result<SparseVec> {
    let p = comm.size();
    if p == 1 {
        return Ok(local);
    }
    let rank = comm.rank();
    let dim = local.dim();
    // Folded ranks (>= p2) send their whole contribution in the fold-in
    // round and adopt the finished sum in the fold-out round; everyone
    // else accumulates on receive and Arc-shares the accumulator with
    // every outgoing message (no clone on the hot path).
    struct SumOps {
        acc: SparseVec,
        dim: usize,
        folded: bool,
    }
    impl PlanOps for SumOps {
        fn on_send(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            if self.folded {
                let outgoing = std::mem::replace(&mut self.acc, SparseVec::empty(self.dim));
                comm.send(peer, tag, Payload::sparse(outgoing))
            } else {
                let shared = Arc::new(std::mem::replace(&mut self.acc, SparseVec::empty(self.dim)));
                comm.send(peer, tag, Payload::sparse_shared(shared.clone()))?;
                self.acc = match Arc::try_unwrap(shared) {
                    Ok(v) => v,
                    Err(shared) => {
                        let mut owned = comm.pool().take_sparse(self.dim);
                        owned.copy_from(&shared);
                        owned
                    }
                };
                Ok(())
            }
        }
        fn on_recv(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            let other = comm.recv(peer, tag)?.payload.into_sparse();
            if self.folded {
                self.acc = other;
            } else {
                let mut next = comm.pool().take_sparse(self.dim);
                self.acc.add_into(&other, &mut next);
                comm.pool()
                    .put_sparse(std::mem::replace(&mut self.acc, next));
                comm.pool().put_sparse(other);
            }
            Ok(())
        }
        fn on_swap(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            // Share the accumulator with the outgoing message instead of
            // cloning it; the merge reads it through the Arc.
            let shared = Arc::new(std::mem::replace(&mut self.acc, SparseVec::empty(self.dim)));
            let msg = comm.sendrecv(peer, tag, Payload::sparse_shared(shared.clone()))?;
            let other = msg.payload.into_sparse();
            let mut next = comm.pool().take_sparse(self.dim);
            shared.add_into(&other, &mut next);
            self.acc = next;
            comm.pool().put_sparse(other);
            if let Ok(v) = Arc::try_unwrap(shared) {
                comm.pool().put_sparse(v);
            }
            Ok(())
        }
    }
    let plan = CollectivePlan::exchange(p);
    let mut ops = SumOps {
        acc: local,
        dim,
        folded: rank >= largest_power_of_two_leq(p),
    };
    execute_plan(comm, &plan, rank, TAG_SSUM, |pos| pos, &mut ops)?;
    Ok(ops.acc)
}

/// First coordinate of region `j` when the `dim` coordinates are
/// balanced over `p2` contiguous regions (the "boundary re-balancing":
/// regions differ by at most one coordinate even when `p2 ∤ dim`).
fn region_start(dim: usize, p2: usize, j: usize) -> u32 {
    (dim * j / p2) as u32
}

/// Split-and-aggregate / gather state shared by both zoo collectives.
///
/// The round schedule and every per-round wire budget come from the
/// [`ZooSchedule`] — the same object the analytic twin charges on a
/// `PlanClock` — and every message is budget-padded
/// ([`Payload::sparse_padded`]), so the executed α-β time is independent
/// of the gradient values and matches the clock replay exactly.
///
/// Residual discipline is witness-based: whenever a budget forces this
/// rank to drop entries (fold-in overflow, a capped swap half, SparDL's
/// cascade truncation, the final per-region selection), the dropped sum
/// goes into this rank's `rejects`, to be returned to its own residual
/// by the caller. Contributions are never silently lost:
/// `Σ contributions == global result + Σ witnessed rejects` exactly.
struct ZooOps<'a> {
    sched: &'a ZooSchedule,
    dim: usize,
    p2: usize,
    my_pos: usize,
    /// Base tag of the phase currently executing (split, then gather) —
    /// `tag - tag_base` recovers the round index inside the plan.
    tag_base: u32,
    gather: bool,
    /// 1 when `p` is not a power of two (the split plan leads with a
    /// fold-in round), else 0.
    fold_rounds: usize,
    acc: SparseVec,
    rejects: SparseVec,
    lo: SparseVec,
    hi: SparseVec,
    tmp: SparseVec,
    rej_tmp: SparseVec,
    empty: SparseVec,
    merge: MergeScratch,
}

impl ZooOps<'_> {
    /// Folds the dropped entries sitting in `self.tmp` into this rank's
    /// witnessed rejects, leaving `self.tmp` empty again.
    fn witness_tmp(&mut self) {
        if self.tmp.is_empty() {
            return;
        }
        self.rejects.add_into(&self.tmp, &mut self.rej_tmp);
        std::mem::swap(&mut self.rejects, &mut self.rej_tmp);
        self.tmp.clear();
    }

    /// Truncates the accumulator to its `cap` largest-magnitude entries,
    /// witnessing the overflow.
    fn cap_acc(&mut self, cap: usize) {
        if self.acc.nnz() <= cap {
            return;
        }
        topk_merge_split_into(
            &self.acc,
            &self.empty,
            cap,
            &mut self.merge,
            &mut self.lo,
            &mut self.tmp,
        );
        std::mem::swap(&mut self.acc, &mut self.lo);
        self.witness_tmp();
    }
}

impl PlanOps for ZooOps<'_> {
    // `Send` exchanges only occur in the fold rounds: fold-in (split
    // phase, folded position ships its capped contribution) and fold-out
    // (gather phase, the assembled result ships to the folded position).
    fn on_send(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
        let r = (tag - self.tag_base) as usize;
        if self.gather {
            let cap = self.sched.gather_slots[r];
            let shared = Arc::new(std::mem::replace(&mut self.acc, SparseVec::empty(self.dim)));
            comm.send(
                peer,
                tag,
                Payload::sparse_padded_shared(shared.clone(), cap),
            )?;
            self.acc = match Arc::try_unwrap(shared) {
                Ok(v) => v,
                Err(shared) => {
                    let mut owned = comm.pool().take_sparse(self.dim);
                    owned.copy_from(&shared);
                    owned
                }
            };
            Ok(())
        } else {
            let cap = self.sched.split_slots[r];
            self.cap_acc(cap);
            let outgoing = std::mem::replace(&mut self.acc, SparseVec::empty(self.dim));
            comm.send(peer, tag, Payload::sparse_padded(outgoing, cap))
        }
    }

    fn on_recv(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
        let r = (tag - self.tag_base) as usize;
        let other = comm.recv(peer, tag)?.payload.into_sparse();
        if self.gather {
            // Fold-out: adopt the assembled global result.
            comm.pool()
                .put_sparse(std::mem::replace(&mut self.acc, other));
            return Ok(());
        }
        // Fold-in: merge the folded position's contribution, applying the
        // cascade truncation where the schedule demands one.
        match self.sched.split_trunc[r] {
            Some(h) => {
                topk_merge_split_into(
                    &self.acc,
                    &other,
                    h,
                    &mut self.merge,
                    &mut self.lo,
                    &mut self.tmp,
                );
                std::mem::swap(&mut self.acc, &mut self.lo);
                self.witness_tmp();
            }
            None => {
                self.acc.add_into(&other, &mut self.lo);
                std::mem::swap(&mut self.acc, &mut self.lo);
            }
        }
        comm.pool().put_sparse(other);
        Ok(())
    }

    fn on_swap(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
        let r = (tag - self.tag_base) as usize;
        if self.gather {
            // Doubling round: exchange whole holdings (disjoint region
            // sets) and merge-add.
            let cap = self.sched.gather_slots[r];
            let shared = Arc::new(std::mem::replace(&mut self.acc, SparseVec::empty(self.dim)));
            let msg = comm.sendrecv(
                peer,
                tag,
                Payload::sparse_padded_shared(shared.clone(), cap),
            )?;
            let other = msg.payload.into_sparse();
            let mut next = comm.pool().take_sparse(self.dim);
            shared.add_into(&other, &mut next);
            self.acc = next;
            comm.pool().put_sparse(other);
            if let Ok(v) = Arc::try_unwrap(shared) {
                comm.pool().put_sparse(v);
            }
            return Ok(());
        }
        // Halving round: split holdings at this round's (re-balanced)
        // block boundary, ship the partner's half under the round budget,
        // keep and merge our own half.
        let s = r - self.fold_rounds;
        let mask = self.p2 >> (s + 1);
        let blk_lo = self.my_pos & !((mask << 1) - 1);
        let boundary = region_start(self.dim, self.p2, blk_lo + mask);
        self.acc.split_at_into(boundary, &mut self.lo, &mut self.hi);
        let cap = self.sched.split_slots[r];
        let keep_low = self.my_pos & mask == 0;
        // Cap the outgoing half; what the budget drops stays here as a
        // witnessed reject (the stale accumulator serves as scratch).
        {
            let send = if keep_low { &mut self.hi } else { &mut self.lo };
            if send.nnz() > cap {
                topk_merge_split_into(
                    send,
                    &self.empty,
                    cap,
                    &mut self.merge,
                    &mut self.acc,
                    &mut self.tmp,
                );
                std::mem::swap(send, &mut self.acc);
            }
        }
        self.witness_tmp();
        let outgoing = {
            let send = if keep_low { &mut self.hi } else { &mut self.lo };
            std::mem::replace(send, SparseVec::empty(self.dim))
        };
        let msg = comm.sendrecv(peer, tag, Payload::sparse_padded(outgoing, cap))?;
        let other = msg.payload.into_sparse();
        {
            let keep = if keep_low { &self.lo } else { &self.hi };
            match self.sched.split_trunc[r] {
                // SparDL cascade: merge and truncate to this round's
                // holding budget; the drop lands in `tmp` and is
                // witnessed below.
                Some(h) => topk_merge_split_into(
                    keep,
                    &other,
                    h,
                    &mut self.merge,
                    &mut self.acc,
                    &mut self.tmp,
                ),
                None => keep.add_into(&other, &mut self.acc),
            }
        }
        self.witness_tmp();
        comm.pool().put_sparse(other);
        Ok(())
    }
}

/// Membership-aware zoo collective: runs the split-and-aggregate phase
/// and the gather phase of `sched` over `members` (sorted, including the
/// caller), addressing members by position. Returns the global sparse
/// result — **identical on every member** — together with this rank's
/// witnessed rejects (entries some budget forced this rank to drop),
/// which the caller returns to its residual.
///
/// Both Ok-Topk and SparDL run through this one executor; they differ
/// only in the [`ZooSchedule`] driving it.
///
/// # Errors
///
/// Propagates transport errors.
///
/// # Panics
///
/// Panics if the caller is not in `members` or `sched` was built for a
/// different group size.
pub fn sparse_zoo_all_reduce_over(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    sched: &ZooSchedule,
    tag_off: u32,
) -> Result<(SparseVec, SparseVec)> {
    let p = members.len();
    assert_eq!(
        sched.p, p,
        "schedule built for {} positions, group has {p}",
        sched.p
    );
    let me = members
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller must be a member of the zoo group");
    let dim = local.dim();
    let p2 = largest_power_of_two_leq(p);
    let mut rejects = comm.pool().take_sparse(dim);
    rejects.clear();
    let mut ops = ZooOps {
        sched,
        dim,
        p2,
        my_pos: me,
        tag_base: TAG_ZOO_SPLIT + tag_off,
        gather: false,
        fold_rounds: usize::from(p > p2),
        acc: local,
        rejects,
        lo: comm.pool().take_sparse(dim),
        hi: comm.pool().take_sparse(dim),
        tmp: comm.pool().take_sparse(dim),
        rej_tmp: comm.pool().take_sparse(dim),
        empty: SparseVec::empty(dim),
        merge: MergeScratch::new(),
    };
    execute_plan(
        comm,
        &sched.split,
        me,
        TAG_ZOO_SPLIT + tag_off,
        |pos| members[pos],
        &mut ops,
    )?;
    // Region selection: narrow the surviving holdings to the region
    // budget — the final per-region top-g selection for Ok-Topk, a no-op
    // for SparDL whose cascade already truncated to it.
    ops.cap_acc(sched.region_slots);
    ops.gather = true;
    ops.tag_base = TAG_ZOO_GATHER + tag_off;
    execute_plan(
        comm,
        &sched.gather,
        me,
        TAG_ZOO_GATHER + tag_off,
        |pos| members[pos],
        &mut ops,
    )?;
    comm.pool().put_sparse(ops.lo);
    comm.pool().put_sparse(ops.hi);
    comm.pool().put_sparse(ops.tmp);
    comm.pool().put_sparse(ops.rej_tmp);
    Ok((ops.acc, ops.rejects))
}

/// Ok-Topk sparse allreduce over the full communicator: equal per-rank
/// contribution quota `⌈k/P⌉`, balanced split-and-aggregate rounds, and
/// a gather of the per-region selections — per-rank volume `O(k)` with
/// no `log P` factor. Returns `(global, witnessed rejects)`; see
/// [`sparse_zoo_all_reduce_over`].
///
/// # Errors
///
/// Propagates transport errors.
pub fn ok_topk_all_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, SparseVec)> {
    let members: Vec<usize> = (0..comm.size()).collect();
    let sched = ZooSchedule::oktopk(members.len(), k);
    sparse_zoo_all_reduce_over(comm, &members, local, &sched, 0)
}

/// SparDL sparse allreduce over the full communicator: Spar-Reduce-
/// Scatter with cascading `⌈h/2⌉` holding budgets, then Spar-All-Gather
/// of the surviving regions — no dense allgather tail. Returns
/// `(global, witnessed rejects)`; see [`sparse_zoo_all_reduce_over`].
///
/// # Errors
///
/// Propagates transport errors.
pub fn spardl_all_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, SparseVec)> {
    let members: Vec<usize> = (0..comm.size()).collect();
    let sched = ZooSchedule::spardl(members.len(), k);
    sparse_zoo_all_reduce_over(comm, &members, local, &sched, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};

    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 8];

    #[test]
    fn broadcast_delivers_sparse_everywhere() {
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let local = if comm.rank() == 0 {
                    SparseVec::from_pairs(10, vec![(2, 1.5), (7, -3.0)])
                } else {
                    SparseVec::empty(10)
                };
                sparse_broadcast(comm, local, 0).unwrap()
            });
            for v in out {
                assert_eq!(v.indices(), &[2, 7], "P={p}");
                assert_eq!(v.values(), &[1.5, -3.0]);
            }
        }
    }

    #[test]
    fn sum_matches_dense_reference() {
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let r = comm.rank() as u32;
                // Overlapping and unique coordinates.
                let local =
                    SparseVec::from_pairs(32, vec![(0, 1.0), (r + 1, 10.0 * (r + 1) as f32)]);
                sparse_sum_recursive_doubling(comm, local).unwrap()
            });
            let mut expect = vec![0.0f32; 32];
            for r in 0..p {
                expect[0] += 1.0;
                expect[r + 1] += 10.0 * (r + 1) as f32;
            }
            for v in out {
                assert_eq!(v.to_dense(), expect, "P={p}");
            }
        }
    }

    #[test]
    fn zoo_collectives_agree_across_ranks_and_conserve_mass() {
        // Set consistency: every rank receives bitwise the same global
        // vector. Conservation: sum of contributions == global + sum of
        // witnessed rejects, coordinate by coordinate.
        for &p in SIZES {
            for sched_of in [ZooSchedule::oktopk, ZooSchedule::spardl] {
                let k = 4usize;
                let dim = 64usize;
                let sched = sched_of(p, k);
                let contrib = sched.contrib_slots;
                let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
                    let r = comm.rank() as u32;
                    // Overlapping coordinate 0 plus unique spread, capped
                    // at the schedule's contribution quota.
                    let pairs: Vec<(u32, f32)> = std::iter::once((0, 1.0 + r as f32))
                        .chain((0..contrib.saturating_sub(1) as u32).map(|j| {
                            let i = 1 + (r * 7 + j * 11) % 63;
                            (i, 0.5 + (r + j) as f32 * 0.25)
                        }))
                        .take(contrib)
                        .collect();
                    let mut dedup: Vec<(u32, f32)> = Vec::new();
                    for (i, v) in pairs {
                        match dedup.iter_mut().find(|(di, _)| *di == i) {
                            Some((_, dv)) => *dv += v,
                            None => dedup.push((i, v)),
                        }
                    }
                    let local = SparseVec::from_pairs(dim, dedup);
                    let members: Vec<usize> = (0..comm.size()).collect();
                    let sched = sched_of(comm.size(), k);
                    let (global, rejects) =
                        sparse_zoo_all_reduce_over(comm, &members, local.clone(), &sched, 0)
                            .unwrap();
                    (local, global, rejects)
                });
                let first = &out[0].1;
                let mut contributed = vec![0.0f64; dim];
                let mut recovered: Vec<f64> = first.to_dense().iter().map(|&v| v as f64).collect();
                for (local, global, rejects) in &out {
                    assert_eq!(global, first, "{} P={p} rank disagreement", sched.name);
                    for (i, v) in local.iter() {
                        contributed[i as usize] += v as f64;
                    }
                    for (i, v) in rejects.iter() {
                        recovered[i as usize] += v as f64;
                    }
                }
                for i in 0..dim {
                    assert!(
                        (contributed[i] - recovered[i]).abs() < 1e-4,
                        "{} P={p} coord {i}: contributed {} vs recovered {}",
                        sched.name,
                        contributed[i],
                        recovered[i]
                    );
                }
            }
        }
    }

    #[test]
    fn zoo_result_is_global_topk_on_disjoint_uniform_contributions() {
        // With disjoint supports and per-rank nnz == the contribution
        // quota, Ok-Topk's region selections keep the globally largest
        // entries of each region.
        let p = 4usize;
        let k = 8usize; // quota 2 per rank
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let r = comm.rank() as u32;
            let local =
                SparseVec::from_pairs(64, vec![(r * 16, 10.0 + r as f32), (r * 16 + 3, 1.0)]);
            ok_topk_all_reduce(comm, local, k).unwrap().0
        });
        for v in &out {
            assert_eq!(v, &out[0]);
            // All 8 contributed entries fit the k budget: nothing dropped.
            assert_eq!(v.nnz(), 8, "got {:?}", v.indices());
        }
    }

    #[test]
    fn zoo_wire_traffic_is_input_independent() {
        // Budget padding: two clusters with very different gradients must
        // produce identical per-rank traffic and identical finish times.
        for &p in &[4usize, 5, 8] {
            for sched_of in [ZooSchedule::oktopk, ZooSchedule::spardl] {
                let k = 6usize;
                let run = |dense: bool| {
                    Cluster::new(p, CostModel::new(0.1, 0.001)).run(move |comm| {
                        let r = comm.rank() as u32;
                        let sched = sched_of(comm.size(), k);
                        let pairs: Vec<(u32, f32)> = if dense {
                            (0..sched.contrib_slots as u32)
                                .map(|j| (r * 31 + j * 3, 1.0 + j as f32))
                                .map(|(i, v)| (i % 256, v))
                                .collect()
                        } else {
                            vec![(r % 256, 1.0)]
                        };
                        let mut dedup: Vec<(u32, f32)> = Vec::new();
                        for (i, v) in pairs {
                            match dedup.iter_mut().find(|(di, _)| *di == i) {
                                Some((_, dv)) => *dv += v,
                                None => dedup.push((i, v)),
                            }
                        }
                        let local = SparseVec::from_pairs(256, dedup);
                        let members: Vec<usize> = (0..comm.size()).collect();
                        sparse_zoo_all_reduce_over(comm, &members, local, &sched, 0).unwrap();
                        (comm.stats().elems_sent, comm.now_ms())
                    })
                };
                let full = run(true);
                let sparse = run(false);
                assert_eq!(
                    full, sparse,
                    "P={p}: padded traffic must not depend on data"
                );
            }
        }
    }

    #[test]
    fn zoo_per_rank_traffic_matches_schedule_exactly() {
        for &p in SIZES {
            for sched_of in [ZooSchedule::oktopk, ZooSchedule::spardl] {
                let k = 5usize;
                let stats = Cluster::new(p, CostModel::zero()).run(move |comm| {
                    let sched = sched_of(comm.size(), k);
                    let local = SparseVec::from_pairs(128, vec![(comm.rank() as u32, 1.0)]);
                    let members: Vec<usize> = (0..comm.size()).collect();
                    sparse_zoo_all_reduce_over(comm, &members, local, &sched, 0).unwrap();
                    (comm.rank(), comm.stats().elems_sent)
                });
                let sched = sched_of(p, k);
                for (rank, sent) in stats {
                    assert_eq!(
                        sent,
                        sched.rank_send_elems(rank),
                        "{} P={p} rank {rank}",
                        sched.name
                    );
                }
            }
        }
    }

    #[test]
    fn sum_traffic_matches_eq6_volume() {
        // For power-of-two P, per-rank sent elements must be 2k(P-1) when
        // all contributions have disjoint supports.
        let p = 8usize;
        let k = 4usize;
        let stats = Cluster::new(p, CostModel::zero()).run(|comm| {
            let r = comm.rank() as u32;
            let pairs: Vec<(u32, f32)> = (0..k as u32).map(|j| (r * k as u32 + j, 1.0)).collect();
            let local = SparseVec::from_pairs(64, pairs);
            sparse_sum_recursive_doubling(comm, local).unwrap();
            comm.stats()
        });
        for s in stats {
            // k + 2k + 4k partial sums, 2 wire words per nnz.
            assert_eq!(s.elems_sent, 2 * k * (p - 1), "{s:?}");
        }
    }
}
