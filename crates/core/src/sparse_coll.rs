//! Sparse collectives built on the simulated MPI substrate.
//!
//! The dense collectives in `gtopk_comm` cannot carry irregularly-indexed
//! sparse gradients (the exact difficulty the paper describes in §II-E),
//! so the sparse variants live here, next to the algorithms that need
//! them. Like their dense cousins they are *plan executions*: the round
//! schedule comes from [`CollectivePlan`] generators and runs through
//! [`execute_plan`], so the broadcast tree shape is a [`Topology`]
//! parameter and fault-tolerant callers rebuild the schedule over
//! survivors by re-generating the plan with a different position→rank
//! mapping.

use gtopk_comm::collectives::largest_power_of_two_leq;
use gtopk_comm::{
    execute_plan, CollectivePlan, Communicator, Message, Payload, PlanOps, Result, Topology,
};
use gtopk_sparse::SparseVec;
use std::sync::Arc;

// Plan tag windows (one tag per round). Fault-tolerant callers add the
// epoch offset (a multiple of `EPOCH_TAG_STRIDE` = 4096), so each window
// must fit between its base and the next within a 4096-wide epoch.
const TAG_SBCAST: u32 = Message::COLLECTIVE_TAG_BASE + 1536;
const TAG_SSUM: u32 = Message::COLLECTIVE_TAG_BASE + 1792;

/// Binomial-tree broadcast of a sparse vector from `root`.
///
/// Non-root ranks pass any placeholder (e.g. `SparseVec::empty(dim)`); the
/// root's vector is returned on every rank. This is the second phase of
/// gTopKAllReduce (Algorithm 3, line 19), costing
/// `⌈log₂P⌉·(α + 2kβ)` — the paper's `log(P)α + 2k·log(P)β` term.
///
/// # Errors
///
/// Propagates transport errors; rejects an invalid root rank.
pub fn sparse_broadcast(
    comm: &mut Communicator,
    local: SparseVec,
    root: usize,
) -> Result<SparseVec> {
    let p = comm.size();
    if root >= p {
        return Err(gtopk_comm::CommError::InvalidRank {
            rank: root,
            size: p,
        });
    }
    let members: Vec<usize> = (0..p).collect();
    sparse_broadcast_over(comm, &members, local, root, 0, Topology::Binomial)
}

/// Membership-aware broadcast over a plan: the `topology`-shaped tree is
/// built over `members` (a sorted subset of ranks that must include the
/// caller and `root`), addressing members by position — the
/// fault-tolerant counterpart of [`sparse_broadcast`]. `tag_off` shifts
/// the collective tag window (epoch-stamped by fault-tolerant callers);
/// with the full membership, `tag_off == 0` and the binomial topology the
/// schedule is bit-identical to the historical fixed-topology broadcast.
///
/// # Errors
///
/// Propagates transport errors; rejects a root outside `members`.
///
/// # Panics
///
/// Panics if the calling rank is not in `members`.
pub(crate) fn sparse_broadcast_over(
    comm: &mut Communicator,
    members: &[usize],
    local: SparseVec,
    root: usize,
    tag_off: u32,
    topology: Topology,
) -> Result<SparseVec> {
    let p = members.len();
    let me = members
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller must be a member of the broadcast group");
    let Some(root_pos) = members.iter().position(|&r| r == root) else {
        return Err(gtopk_comm::CommError::InvalidRank {
            rank: root,
            size: comm.size(),
        });
    };
    if p == 1 {
        return Ok(local);
    }
    // One Arc-shared buffer travels the whole tree: relays forward the
    // reference they received and fan-out sends bump a reference count.
    struct BcastOps {
        shared: Arc<SparseVec>,
    }
    impl PlanOps for BcastOps {
        fn on_send(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            comm.send(peer, tag, Payload::sparse_shared(self.shared.clone()))
        }
        fn on_recv(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            self.shared = comm.recv(peer, tag)?.payload.into_sparse_arc();
            Ok(())
        }
    }
    let plan = CollectivePlan::broadcast(topology, p, root_pos);
    let mut ops = BcastOps {
        shared: Arc::new(local),
    };
    execute_plan(
        comm,
        &plan,
        me,
        TAG_SBCAST + tag_off,
        |pos| members[pos],
        &mut ops,
    )?;
    // Materialize our own copy: free if the reference is unique by now,
    // otherwise copied into pooled buffers (no fresh allocation at steady
    // state).
    Ok(match Arc::try_unwrap(ops.shared) {
        Ok(v) => v,
        Err(shared) => {
            let mut owned = comm.pool().take_sparse(shared.dim());
            owned.copy_from(&shared);
            owned
        }
    })
}

/// Exact sparse sum across all ranks by recursive doubling.
///
/// Every rank contributes a sparse vector and receives the exact (merge-
/// added, untruncated) sum. With each worker contributing `k` non-zeros,
/// round `j` exchanges partial sums of up to `2ʲ·k` non-zeros, so the
/// total per-rank traffic is `2k(P−1)` elements over `log₂P` rounds —
/// exactly the paper's Eq. 6 cost for the AllGather-based TopKAllReduce
/// (which this operation replaces semantically: Algorithm 1 only ever
/// uses the gathered vectors to compute their sum).
///
/// Non-power-of-two sizes fold extra ranks in and out.
///
/// # Errors
///
/// Propagates transport errors.
pub fn sparse_sum_recursive_doubling(
    comm: &mut Communicator,
    local: SparseVec,
) -> Result<SparseVec> {
    let p = comm.size();
    if p == 1 {
        return Ok(local);
    }
    let rank = comm.rank();
    let dim = local.dim();
    // Folded ranks (>= p2) send their whole contribution in the fold-in
    // round and adopt the finished sum in the fold-out round; everyone
    // else accumulates on receive and Arc-shares the accumulator with
    // every outgoing message (no clone on the hot path).
    struct SumOps {
        acc: SparseVec,
        dim: usize,
        folded: bool,
    }
    impl PlanOps for SumOps {
        fn on_send(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            if self.folded {
                let outgoing = std::mem::replace(&mut self.acc, SparseVec::empty(self.dim));
                comm.send(peer, tag, Payload::sparse(outgoing))
            } else {
                let shared = Arc::new(std::mem::replace(&mut self.acc, SparseVec::empty(self.dim)));
                comm.send(peer, tag, Payload::sparse_shared(shared.clone()))?;
                self.acc = match Arc::try_unwrap(shared) {
                    Ok(v) => v,
                    Err(shared) => {
                        let mut owned = comm.pool().take_sparse(self.dim);
                        owned.copy_from(&shared);
                        owned
                    }
                };
                Ok(())
            }
        }
        fn on_recv(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            let other = comm.recv(peer, tag)?.payload.into_sparse();
            if self.folded {
                self.acc = other;
            } else {
                let mut next = comm.pool().take_sparse(self.dim);
                self.acc.add_into(&other, &mut next);
                comm.pool()
                    .put_sparse(std::mem::replace(&mut self.acc, next));
                comm.pool().put_sparse(other);
            }
            Ok(())
        }
        fn on_swap(&mut self, comm: &mut Communicator, peer: usize, tag: u32) -> Result<()> {
            // Share the accumulator with the outgoing message instead of
            // cloning it; the merge reads it through the Arc.
            let shared = Arc::new(std::mem::replace(&mut self.acc, SparseVec::empty(self.dim)));
            let msg = comm.sendrecv(peer, tag, Payload::sparse_shared(shared.clone()))?;
            let other = msg.payload.into_sparse();
            let mut next = comm.pool().take_sparse(self.dim);
            shared.add_into(&other, &mut next);
            self.acc = next;
            comm.pool().put_sparse(other);
            if let Ok(v) = Arc::try_unwrap(shared) {
                comm.pool().put_sparse(v);
            }
            Ok(())
        }
    }
    let plan = CollectivePlan::exchange(p);
    let mut ops = SumOps {
        acc: local,
        dim,
        folded: rank >= largest_power_of_two_leq(p),
    };
    execute_plan(comm, &plan, rank, TAG_SSUM, |pos| pos, &mut ops)?;
    Ok(ops.acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};

    const SIZES: &[usize] = &[1, 2, 3, 4, 5, 8];

    #[test]
    fn broadcast_delivers_sparse_everywhere() {
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let local = if comm.rank() == 0 {
                    SparseVec::from_pairs(10, vec![(2, 1.5), (7, -3.0)])
                } else {
                    SparseVec::empty(10)
                };
                sparse_broadcast(comm, local, 0).unwrap()
            });
            for v in out {
                assert_eq!(v.indices(), &[2, 7], "P={p}");
                assert_eq!(v.values(), &[1.5, -3.0]);
            }
        }
    }

    #[test]
    fn sum_matches_dense_reference() {
        for &p in SIZES {
            let out = Cluster::new(p, CostModel::zero()).run(|comm| {
                let r = comm.rank() as u32;
                // Overlapping and unique coordinates.
                let local =
                    SparseVec::from_pairs(32, vec![(0, 1.0), (r + 1, 10.0 * (r + 1) as f32)]);
                sparse_sum_recursive_doubling(comm, local).unwrap()
            });
            let mut expect = vec![0.0f32; 32];
            for r in 0..p {
                expect[0] += 1.0;
                expect[r + 1] += 10.0 * (r + 1) as f32;
            }
            for v in out {
                assert_eq!(v.to_dense(), expect, "P={p}");
            }
        }
    }

    #[test]
    fn sum_traffic_matches_eq6_volume() {
        // For power-of-two P, per-rank sent elements must be 2k(P-1) when
        // all contributions have disjoint supports.
        let p = 8usize;
        let k = 4usize;
        let stats = Cluster::new(p, CostModel::zero()).run(|comm| {
            let r = comm.rank() as u32;
            let pairs: Vec<(u32, f32)> = (0..k as u32).map(|j| (r * k as u32 + j, 1.0)).collect();
            let local = SparseVec::from_pairs(64, pairs);
            sparse_sum_recursive_doubling(comm, local).unwrap();
            comm.stats()
        });
        for s in stats {
            // k + 2k + 4k partial sums, 2 wire words per nnz.
            assert_eq!(s.elems_sent, 2 * k * (p - 1), "{s:?}");
        }
    }
}
