//! Density and learning-rate warmup schedules (paper §IV-B).

/// Gradient density ρ per epoch.
///
/// The paper trains the first epochs with dynamic densities
/// `[0.25, 0.0725, 0.015, 0.004]` (and reduced learning rates) before
/// switching to the target density (0.001 for CNNs, 0.005 for the LSTM).
///
/// # Examples
///
/// ```
/// use gtopk::DensitySchedule;
/// let sched = DensitySchedule::paper_warmup(0.001);
/// assert_eq!(sched.density(0), 0.25);
/// assert_eq!(sched.density(3), 0.004);
/// assert_eq!(sched.density(4), 0.001);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensitySchedule {
    warmup: Vec<f64>,
    base: f64,
}

impl DensitySchedule {
    /// Constant density for every epoch.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < base <= 1`.
    pub fn constant(base: f64) -> Self {
        DensitySchedule::new(Vec::new(), base)
    }

    /// The paper's four-epoch warmup followed by `base`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < base <= 1`.
    pub fn paper_warmup(base: f64) -> Self {
        DensitySchedule::new(vec![0.25, 0.0725, 0.015, 0.004], base)
    }

    /// Custom warmup densities followed by `base`.
    ///
    /// # Panics
    ///
    /// Panics unless every density is in `(0, 1]`.
    pub fn new(warmup: Vec<f64>, base: f64) -> Self {
        for &d in warmup.iter().chain(std::iter::once(&base)) {
            assert!(d > 0.0 && d <= 1.0, "density {d} must be in (0, 1]");
        }
        DensitySchedule { warmup, base }
    }

    /// Density for the given (0-based) epoch.
    pub fn density(&self, epoch: usize) -> f64 {
        self.warmup.get(epoch).copied().unwrap_or(self.base)
    }

    /// Selection budget `k = max(1, round(ρ·m))` for the given epoch and
    /// model size.
    pub fn k(&self, epoch: usize, num_params: usize) -> usize {
        ((self.density(epoch) * num_params as f64).round() as usize).clamp(1, num_params)
    }

    /// The post-warmup density.
    pub fn base(&self) -> f64 {
        self.base
    }
}

/// Learning-rate schedule: optional warmup factor over the first epochs
/// and step decay afterwards.
///
/// # Examples
///
/// ```
/// use gtopk::LrSchedule;
/// let sched = LrSchedule::new(0.1, 4, vec![80, 120]);
/// assert!(sched.lr(0) < 0.1);                    // warming up
/// assert_eq!(sched.lr(10), 0.1);                 // full rate
/// assert!((sched.lr(90) - 0.01).abs() < 1e-6);   // decayed ×0.1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LrSchedule {
    base: f32,
    warmup_epochs: usize,
    decay_milestones: Vec<usize>,
}

impl LrSchedule {
    /// Creates a schedule with linear warmup over `warmup_epochs` and
    /// ×0.1 decay at each milestone epoch.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not positive-finite.
    pub fn new(base: f32, warmup_epochs: usize, decay_milestones: Vec<usize>) -> Self {
        assert!(base.is_finite() && base > 0.0, "base lr must be positive");
        LrSchedule {
            base,
            warmup_epochs,
            decay_milestones,
        }
    }

    /// Constant learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not positive-finite.
    pub fn constant(base: f32) -> Self {
        LrSchedule::new(base, 0, Vec::new())
    }

    /// Learning rate for the given (0-based) epoch.
    pub fn lr(&self, epoch: usize) -> f32 {
        let mut lr = self.base;
        if epoch < self.warmup_epochs {
            lr *= (epoch + 1) as f32 / (self.warmup_epochs + 1) as f32;
        }
        for &m in &self.decay_milestones {
            if epoch >= m {
                lr *= 0.1;
            }
        }
        lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_warmup_sequence() {
        let s = DensitySchedule::paper_warmup(0.001);
        let densities: Vec<f64> = (0..6).map(|e| s.density(e)).collect();
        assert_eq!(densities, vec![0.25, 0.0725, 0.015, 0.004, 0.001, 0.001]);
        assert_eq!(s.base(), 0.001);
    }

    #[test]
    fn k_scales_with_density_and_clamps() {
        let s = DensitySchedule::constant(0.001);
        assert_eq!(s.k(0, 1_000_000), 1_000);
        assert_eq!(s.k(0, 10), 1); // floor of 1
        let full = DensitySchedule::constant(1.0);
        assert_eq!(full.k(0, 10), 10); // never exceeds m
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_density_rejected() {
        let _ = DensitySchedule::constant(0.0);
    }

    #[test]
    fn lr_warmup_is_monotone_then_flat() {
        let s = LrSchedule::new(1.0, 4, vec![]);
        let rates: Vec<f32> = (0..6).map(|e| s.lr(e)).collect();
        for w in rates.windows(2) {
            assert!(w[0] <= w[1] + 1e-6);
        }
        assert_eq!(s.lr(4), 1.0);
    }

    #[test]
    fn lr_decays_at_milestones() {
        let s = LrSchedule::new(1.0, 0, vec![10, 20]);
        assert_eq!(s.lr(9), 1.0);
        assert!((s.lr(10) - 0.1).abs() < 1e-6);
        assert!((s.lr(25) - 0.01).abs() < 1e-6);
    }
}
