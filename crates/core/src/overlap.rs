//! Executed compute/communication overlap: wait-free bucketed gTop-k.
//!
//! [`crate::pipeline`] *models* the layer-wise schedule analytically; this
//! module *executes* it on the simulated cluster. Backward propagation
//! produces layer gradients from the output layer backwards, so the flat
//! gradient becomes available back-to-front: the engine partitions the
//! flat vector into contiguous buckets (fused to roughly equal parameter
//! mass, MG-WFBP style), and as soon as a bucket's gradient is ready it
//! runs that bucket's residual-accumulate → top-k select →
//! gTopKAllReduce, while later buckets are still "computing". The
//! network is a single FIFO channel — each rank issues its bucket
//! collectives in backward order, so a bucket's collective starts at
//! `max(ready, channel_free)` exactly as the analytic model assumes, and
//! the executed timeline is directly comparable against
//! [`crate::pipeline::simulate_fused`].
//!
//! Per-bucket error feedback: each bucket owns its own [`Residual`]
//! slice and its own selection state; rejected values return to the
//! bucket's residual (Algorithm 4 line 10, applied bucket-wise). The
//! optimizer applies each bucket's averaged update the moment its
//! collective lands ([`MomentumSgd::step_range`]), which is provably
//! equivalent to one full-vector step of the combined update.

use crate::gtopk_allreduce::gtopk_all_reduce;
use crate::pipeline::{
    bucket_k, check_timeline_invariants, fuse_layers, simulate_layerwise, LayerCost, LayerTimeline,
    PipelineReport,
};
use crate::selector::{Selector, SelectorState};
use crate::trainer::ComputeCost;
use gtopk_comm::{Communicator, CostModel, Result};
use gtopk_nn::{Model, MomentumSgd};
use gtopk_sparse::Residual;
use std::ops::Range;

/// How the flat gradient is partitioned into overlap buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketSpec {
    /// Fuse the model's layers into this many contiguous buckets of
    /// roughly equal parameter mass (at most one bucket per layer).
    Count(usize),
    /// One bucket per parameterized layer (no fusion) — maximum overlap
    /// granularity, maximum per-message α cost.
    PerLayer,
}

/// Configuration of the executed overlap engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapConfig {
    /// Bucket partition of the flat gradient.
    pub buckets: BucketSpec,
}

impl OverlapConfig {
    /// Overlap with `n` fused buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn buckets(n: usize) -> Self {
        assert!(n >= 1, "need at least one bucket");
        OverlapConfig {
            buckets: BucketSpec::Count(n),
        }
    }

    /// Overlap with one bucket per parameterized layer.
    pub fn per_layer() -> Self {
        OverlapConfig {
            buckets: BucketSpec::PerLayer,
        }
    }
}

/// Aggregate schedule statistics of an overlapped training run (one
/// rank's view), comparing the executed timeline against the analytic
/// pipeline model on the same bucketization.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapStats {
    /// Number of buckets in force.
    pub buckets: usize,
    /// Overlapped iterations executed.
    pub iterations: usize,
    /// Sum over iterations of the executed iteration span (backward
    /// start to last bucket's collective completion), ms.
    pub executed_overlapped_ms: f64,
    /// Sum of the analytic pipeline predictions
    /// ([`PipelineReport::overlapped_ms`]) for the same iterations, ms.
    pub analytic_overlapped_ms: f64,
    /// Sum of the analytic *serial* baselines (full backward, then one
    /// whole-model gTopKAllReduce), ms.
    pub analytic_serial_ms: f64,
    /// Largest single-iteration deviation |executed − analytic|, ms
    /// (recorded only on straggle-free ranks). Absent fault injection
    /// the two schedules must agree for power-of-two worker counts;
    /// armed drop/jitter plans legitimately inflate this — retransmits
    /// and jitter are not in the α-β model.
    pub max_abs_dev_ms: f64,
    /// Executed per-bucket timelines of the last iteration, relative to
    /// that iteration's start (same shape as the analytic
    /// [`PipelineReport::timelines`]).
    pub timelines: Vec<LayerTimeline>,
}

impl OverlapStats {
    /// Executed speedup over the analytic serial baseline.
    pub fn speedup_vs_serial(&self) -> f64 {
        self.analytic_serial_ms / self.executed_overlapped_ms
    }
}

/// Per-layer backward cost profile in **backward execution order**
/// (output layer first), distributing `compute_ms + sparsify_ms` over
/// the layers proportionally to parameter mass — a bucket's collective
/// can launch only after its gradient is both computed *and* sparsified,
/// so both delays gate readiness. This is the shared cost basis: the
/// engine schedules with it and tests/benches feed the identical list to
/// [`crate::pipeline::simulate_fused`] for the analytic prediction.
pub fn backward_layer_costs(segments: &[usize], compute: Option<ComputeCost>) -> Vec<LayerCost> {
    let m: usize = segments.iter().sum();
    let work_ms = compute.map_or(0.0, |c| c.compute_ms + c.sparsify_ms);
    segments
        .iter()
        .rev()
        .map(|&params| LayerCost {
            params,
            backward_ms: work_ms * params as f64 / m as f64,
        })
        .collect()
}

/// The executed overlap engine: per-bucket residuals, selectors, and
/// schedule bookkeeping for one rank. Created once per training run and
/// driven once per iteration through [`OverlapEngine::step`].
#[derive(Debug)]
pub struct OverlapEngine {
    /// Flat-vector ranges per bucket, in backward order (the *last*
    /// contiguous slice of the flat vector first).
    ranges: Vec<Range<usize>>,
    /// Fused per-bucket costs, in backward order.
    costs: Vec<LayerCost>,
    /// Per-bucket sparsification cost share, ms.
    sparsify: Vec<f64>,
    residuals: Vec<Residual>,
    selectors: Vec<SelectorState>,
    net: CostModel,
    /// Analytic prediction cached per density (density changes at epoch
    /// boundaries only).
    analytic: Option<(f64, PipelineReport)>,
    iterations: usize,
    executed_ms: f64,
    analytic_overlapped_ms: f64,
    analytic_serial_ms: f64,
    max_abs_dev_ms: f64,
    timelines: Vec<LayerTimeline>,
}

impl OverlapEngine {
    /// Builds the engine for a model with the given parameter segments
    /// (see [`Model::param_segments`]); `net` must be the cluster's cost
    /// model so analytic predictions price communication identically.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty (a model without parameters cannot
    /// be trained).
    pub fn new(
        cfg: &OverlapConfig,
        segments: &[usize],
        compute: Option<ComputeCost>,
        selector: Selector,
        rank: usize,
        net: CostModel,
    ) -> Self {
        assert!(!segments.is_empty(), "model has no parameter segments");
        let m: usize = segments.iter().sum();
        let per_layer = backward_layer_costs(segments, compute);
        let costs = match cfg.buckets {
            BucketSpec::PerLayer => per_layer,
            BucketSpec::Count(n) => fuse_layers(&per_layer, n),
        };
        // Bucket 0 is the first produced by backward — the *top* of the
        // flat vector; walk downwards.
        let mut ranges = Vec::with_capacity(costs.len());
        let mut hi = m;
        for c in &costs {
            let lo = hi - c.params;
            ranges.push(lo..hi);
            hi = lo;
        }
        assert_eq!(hi, 0, "buckets must cover the whole flat vector");
        let sparsify_total = compute.map_or(0.0, |c| c.sparsify_ms);
        let sparsify = costs
            .iter()
            .map(|c| sparsify_total * c.params as f64 / m as f64)
            .collect();
        let residuals = ranges.iter().map(|r| Residual::new(r.len())).collect();
        let selectors = costs
            .iter()
            .map(|_| SelectorState::new(selector, rank))
            .collect();
        OverlapEngine {
            ranges,
            costs,
            sparsify,
            residuals,
            selectors,
            net,
            analytic: None,
            iterations: 0,
            executed_ms: 0.0,
            analytic_overlapped_ms: 0.0,
            analytic_serial_ms: 0.0,
            max_abs_dev_ms: 0.0,
            timelines: Vec::new(),
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.ranges.len()
    }

    /// Modeled compute charged per iteration (the full backward,
    /// distributed over the buckets), ms, before straggle scaling.
    /// Bucket costs fold sparsification in (readiness gates on both), so
    /// the sparsify share is subtracted back out for the timing split.
    pub fn compute_ms_per_iter(&self) -> f64 {
        self.costs.iter().map(|c| c.backward_ms).sum::<f64>() - self.sparsify_ms_per_iter()
    }

    /// Modeled sparsification charged per iteration, ms, before
    /// straggle scaling.
    pub fn sparsify_ms_per_iter(&self) -> f64 {
        self.sparsify.iter().sum()
    }

    /// Executes one overlapped iteration: for each bucket in backward
    /// order, waits until the bucket's gradient is ready on the
    /// simulated clock, accumulates `grad`'s slice into the bucket
    /// residual, extracts the bucket top-k (`k = bucket_k(params, rho)`),
    /// runs gTopKAllReduce, puts rejected values back, and applies the
    /// averaged bucket update through [`MomentumSgd::step_range`].
    ///
    /// `grad` is the full flat gradient of this iteration (backward has
    /// genuinely finished producing values; only the *clock* is staged
    /// per bucket). Returns the total non-zero count applied.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the communicator.
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not span the bucketed flat vector or
    /// `rho ∉ (0, 1]`.
    pub fn step(
        &mut self,
        comm: &mut Communicator,
        grad: &[f32],
        rho: f64,
        opt: &mut MomentumSgd,
        model: &mut dyn Model,
    ) -> Result<u64> {
        assert_eq!(grad.len(), self.ranges[0].end, "gradient length mismatch");
        assert!(rho > 0.0 && rho <= 1.0, "density must be in (0, 1]");
        let t0 = comm.now_ms();
        let straggle = comm.straggle_factor();
        let inv = 1.0 / comm.size() as f32;
        let mut cum = 0.0f64;
        let mut nnz = 0u64;
        self.timelines.clear();
        for j in 0..self.ranges.len() {
            let range = self.ranges[j].clone();
            // Bucket costs already include the sparsify share.
            cum += self.costs[j].backward_ms;
            let ready = t0 + straggle * cum;
            // Gradient availability: the clock may already be past
            // `ready` if the previous bucket's collective held the
            // channel longer (FIFO) — wait_until never moves backwards.
            comm.wait_until(ready);
            let start = comm.now_ms();
            self.residuals[j].accumulate(&grad[range.clone()]);
            let k = bucket_k(range.len(), rho);
            let local = self.selectors[j].extract(&mut self.residuals[j], k);
            let (mut global, gmask) = gtopk_all_reduce(comm, local.clone(), k)?;
            let (_kept, rejected) = local.partition_by(&gmask);
            self.residuals[j].put_back(&rejected);
            global.scale(inv);
            nnz += global.nnz() as u64;
            opt.step_range(model, range, &global);
            self.timelines.push(LayerTimeline {
                ready_ms: ready - t0,
                start_ms: start - t0,
                end_ms: comm.now_ms() - t0,
            });
        }
        let span = comm.now_ms() - t0;
        debug_assert!(
            check_timeline_invariants(&self.timelines).is_ok(),
            "executed schedule violated timeline invariants: {:?}",
            check_timeline_invariants(&self.timelines)
        );

        if self.analytic.as_ref().is_none_or(|(r, _)| *r != rho) {
            let p = comm.size();
            self.analytic = Some((rho, simulate_layerwise(&self.costs, &self.net, p, rho)));
        }
        let report = &self.analytic.as_ref().expect("just cached").1;
        self.analytic_overlapped_ms += report.overlapped_ms;
        self.analytic_serial_ms += report.serial_ms;
        if straggle == 1.0 {
            self.max_abs_dev_ms = self.max_abs_dev_ms.max((span - report.overlapped_ms).abs());
        }
        self.executed_ms += span;
        self.iterations += 1;
        Ok(nnz)
    }

    /// Snapshot of the accumulated schedule statistics.
    pub fn stats(&self) -> OverlapStats {
        OverlapStats {
            buckets: self.ranges.len(),
            iterations: self.iterations,
            executed_overlapped_ms: self.executed_ms,
            analytic_overlapped_ms: self.analytic_overlapped_ms,
            analytic_serial_ms: self.analytic_serial_ms,
            max_abs_dev_ms: self.max_abs_dev_ms,
            timelines: self.timelines.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};
    use gtopk_nn::models;

    #[test]
    fn bucket_ranges_cover_flat_vector_back_to_front() {
        let model = models::mlp(3, 8, 16, 4);
        let segments = gtopk_nn::Model::param_segments(&model);
        let m: usize = segments.iter().sum();
        let engine = OverlapEngine::new(
            &OverlapConfig::buckets(2),
            &segments,
            None,
            Selector::Exact,
            0,
            CostModel::zero(),
        );
        assert_eq!(engine.buckets(), 2);
        // Backward order: the first bucket ends at the top of the vector.
        let mut expect_hi = m;
        let mut covered = 0usize;
        for j in 0..engine.buckets() {
            let r = engine.ranges[j].clone();
            assert_eq!(r.end, expect_hi);
            expect_hi = r.start;
            covered += r.len();
        }
        assert_eq!(covered, m);
        assert_eq!(expect_hi, 0);
    }

    #[test]
    fn per_layer_spec_gives_one_bucket_per_segment() {
        let segments = [100usize, 50, 200];
        let engine = OverlapEngine::new(
            &OverlapConfig::per_layer(),
            &segments,
            None,
            Selector::Exact,
            0,
            CostModel::zero(),
        );
        assert_eq!(engine.buckets(), 3);
        // Backward order reverses the segment list.
        assert_eq!(engine.costs[0].params, 200);
        assert_eq!(engine.costs[2].params, 100);
    }

    #[test]
    fn backward_costs_distribute_compute_by_mass() {
        let costs = backward_layer_costs(
            &[100, 300],
            Some(ComputeCost {
                compute_ms: 8.0,
                sparsify_ms: 0.0,
            }),
        );
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0].params, 300); // backward order
        assert!((costs[0].backward_ms - 6.0).abs() < 1e-12);
        assert!((costs[1].backward_ms - 2.0).abs() < 1e-12);
        // Sparsification gates readiness too, so it folds into the basis.
        let with_sparsify = backward_layer_costs(
            &[100, 300],
            Some(ComputeCost {
                compute_ms: 8.0,
                sparsify_ms: 2.0,
            }),
        );
        assert!((with_sparsify[0].backward_ms - 7.5).abs() < 1e-12);
        assert!((with_sparsify[1].backward_ms - 2.5).abs() < 1e-12);
    }

    #[test]
    fn overlapped_steps_keep_replicas_identical() {
        // Four ranks run three overlapped iterations on deterministic
        // per-rank gradients; models must stay bit-identical.
        let p = 4usize;
        let segments = vec![24usize, 40];
        let m: usize = segments.iter().sum();
        let out = Cluster::new(p, CostModel::gigabit_ethernet()).run(move |comm| {
            let mut model = models::logistic(9, 7, 8); // 7*8+8 = 64 params
            assert_eq!(gtopk_nn::Model::num_params(&model), m);
            let mut opt = MomentumSgd::new(m, 0.1, 0.9);
            let mut engine = OverlapEngine::new(
                &OverlapConfig::buckets(2),
                &segments,
                Some(ComputeCost {
                    compute_ms: 4.0,
                    sparsify_ms: 0.0,
                }),
                Selector::Exact,
                comm.rank(),
                CostModel::gigabit_ethernet(),
            );
            for it in 0..3u64 {
                let g: Vec<f32> = (0..m)
                    .map(|i| {
                        let h = (i as u64 + 7)
                            .wrapping_mul(comm.rank() as u64 + 3)
                            .wrapping_mul(it + 11)
                            .wrapping_mul(0x2545_f491_4f6c_dd1d);
                        ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                    })
                    .collect();
                engine.step(comm, &g, 0.1, &mut opt, &mut model).unwrap();
            }
            (
                gtopk_nn::Model::flat_params(&model),
                engine.stats(),
                comm.now_ms(),
            )
        });
        for (params, stats, now) in &out {
            assert_eq!(params, &out[0].0, "replicas diverged");
            check_timeline_invariants(&stats.timelines).unwrap();
            assert_eq!(stats.iterations, 3);
            // Power-of-two P, straggle-free: executed == analytic.
            assert!(
                stats.max_abs_dev_ms < 1e-6,
                "executed deviates from analytic by {} ms",
                stats.max_abs_dev_ms
            );
            assert!((now - out[0].2).abs() < 1e-9, "ranks finish together");
        }
    }
}
