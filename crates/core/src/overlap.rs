//! Executed compute/communication overlap: wait-free bucketed gTop-k.
//!
//! [`crate::pipeline`] *models* the layer-wise schedule analytically; this
//! module *executes* it on the simulated cluster. Backward propagation
//! produces layer gradients from the output layer backwards, so the flat
//! gradient becomes available back-to-front: the engine partitions the
//! flat vector into contiguous buckets (fused to roughly equal parameter
//! mass, MG-WFBP style), and as soon as a bucket's gradient is ready it
//! runs that bucket's residual-accumulate → top-k select →
//! gTopKAllReduce, while later buckets are still "computing". The
//! network is a single FIFO channel — each rank issues its bucket
//! collectives in backward order, so a bucket's collective starts at
//! `max(ready, channel_free)` exactly as the analytic model assumes. The
//! engine carries a [`PlanClock`] twin that replays each bucket's
//! collective plans on the analytic α-β clock, so the executed timeline
//! is verifiable against the model *exactly*, for any worker count and
//! topology (and [`crate::pipeline::simulate_fused`] gives the same
//! prediction on power-of-two binomial configurations).
//!
//! Per-bucket error feedback: each bucket owns its own [`Residual`]
//! slice and its own selection state; rejected values return to the
//! bucket's residual (Algorithm 4 line 10, applied bucket-wise). The
//! optimizer applies each bucket's averaged update the moment its
//! collective lands ([`MomentumSgd::step_range`]), which is provably
//! equivalent to one full-vector step of the combined update.

use crate::aggregator::Algorithm;
use crate::ft::epoch_tag_offset;
use crate::gtopk_allreduce::gtopk_all_reduce_over;
use crate::pipeline::{bucket_k, check_timeline_invariants, fuse_layers, LayerCost, LayerTimeline};
use crate::selector::{Selector, SelectorState};
use crate::sparse_coll::sparse_zoo_all_reduce_over;
use crate::trainer::ComputeCost;
use gtopk_comm::{CollectivePlan, Communicator, CostModel, Result, Topology};
use gtopk_nn::{Model, MomentumSgd};
use gtopk_perfmodel::{gtopk_allreduce_ms, oktopk_plan_ms, spardl_plan_ms, PlanClock, ZooSchedule};
use gtopk_sparse::Residual;
use std::ops::Range;

/// How the flat gradient is partitioned into overlap buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketSpec {
    /// Fuse the model's layers into this many contiguous buckets of
    /// roughly equal parameter mass (at most one bucket per layer).
    Count(usize),
    /// One bucket per parameterized layer (no fusion) — maximum overlap
    /// granularity, maximum per-message α cost.
    PerLayer,
}

/// Configuration of the executed overlap engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapConfig {
    /// Bucket partition of the flat gradient.
    pub buckets: BucketSpec,
    /// Collective plan topology used by every bucket's gTopKAllReduce.
    pub topology: Topology,
}

impl OverlapConfig {
    /// Overlap with `n` fused buckets on the binomial topology.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn buckets(n: usize) -> Self {
        assert!(n >= 1, "need at least one bucket");
        OverlapConfig {
            buckets: BucketSpec::Count(n),
            topology: Topology::Binomial,
        }
    }

    /// Overlap with one bucket per parameterized layer.
    pub fn per_layer() -> Self {
        OverlapConfig {
            buckets: BucketSpec::PerLayer,
            topology: Topology::Binomial,
        }
    }

    /// Same bucketization, different collective topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }
}

/// Aggregate schedule statistics of an overlapped training run (one
/// rank's view), comparing the executed timeline against the analytic
/// pipeline model on the same bucketization.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapStats {
    /// Number of buckets in force.
    pub buckets: usize,
    /// Overlapped iterations executed.
    pub iterations: usize,
    /// Sum over iterations of the executed iteration span (backward
    /// start to last bucket's collective completion), ms.
    pub executed_overlapped_ms: f64,
    /// Sum of the plan-clock twin's predicted iteration spans, ms. The
    /// twin ([`gtopk_perfmodel::PlanClock`]) replays the exact collective
    /// plans on the analytic α-β clock, so this matches the executed
    /// span for **every** worker count and topology, not just powers of
    /// two.
    pub analytic_overlapped_ms: f64,
    /// Sum of the analytic *serial* baselines (full backward, then one
    /// whole-model gTopKAllReduce at the Eq. 7 cost), ms.
    pub analytic_serial_ms: f64,
    /// Largest single-iteration deviation |executed − analytic|, ms
    /// (recorded only on straggle-free ranks at full membership).
    /// Absent fault injection the plan-clock twin reproduces the
    /// executed schedule exactly — for any `P`, any topology; armed
    /// drop/jitter plans legitimately inflate this — retransmits and
    /// jitter are not in the α-β model.
    pub max_abs_dev_ms: f64,
    /// Executed per-bucket timelines of the last iteration, relative to
    /// that iteration's start (same shape as the analytic
    /// [`PipelineReport::timelines`]).
    pub timelines: Vec<LayerTimeline>,
}

impl OverlapStats {
    /// Executed speedup over the analytic serial baseline.
    pub fn speedup_vs_serial(&self) -> f64 {
        self.analytic_serial_ms / self.executed_overlapped_ms
    }
}

/// Per-layer backward cost profile in **backward execution order**
/// (output layer first), distributing `compute_ms + sparsify_ms` over
/// the layers proportionally to parameter mass — a bucket's collective
/// can launch only after its gradient is both computed *and* sparsified,
/// so both delays gate readiness. This is the shared cost basis: the
/// engine schedules with it and tests/benches feed the identical list to
/// [`crate::pipeline::simulate_fused`] for the analytic prediction.
pub fn backward_layer_costs(segments: &[usize], compute: Option<ComputeCost>) -> Vec<LayerCost> {
    let m: usize = segments.iter().sum();
    let work_ms = compute.map_or(0.0, |c| c.compute_ms + c.sparsify_ms);
    segments
        .iter()
        .rev()
        .map(|&params| LayerCost {
            params,
            backward_ms: work_ms * params as f64 / m as f64,
        })
        .collect()
}

/// The executed overlap engine: per-bucket residuals, selectors, and
/// schedule bookkeeping for one rank. Created once per training run and
/// driven once per iteration through [`OverlapEngine::step`].
#[derive(Debug)]
pub struct OverlapEngine {
    /// Flat-vector ranges per bucket, in backward order (the *last*
    /// contiguous slice of the flat vector first).
    ranges: Vec<Range<usize>>,
    /// Fused per-bucket costs, in backward order.
    costs: Vec<LayerCost>,
    /// Per-bucket sparsification cost share, ms.
    sparsify: Vec<f64>,
    residuals: Vec<Residual>,
    selectors: Vec<SelectorState>,
    net: CostModel,
    topology: Topology,
    /// Which sparse collective each bucket runs (gTop-k tree, Ok-Topk,
    /// or SparDL).
    algorithm: Algorithm,
    /// Per-bucket zoo schedules, cached per `(P, k)` (zoo algorithms
    /// only; `None` entries rebuild lazily).
    zoo_scheds: Vec<Option<ZooSchedule>>,
    /// Analytic twin: one α-β clock per member position, replaying every
    /// bucket collective's plan. Carried across buckets *and* iterations
    /// so cross-iteration channel backpressure is modelled exactly.
    twin: PlanClock,
    /// Membership the twin (and the cached plans) were built for; a
    /// membership change rebuilds both.
    twin_members: Vec<usize>,
    /// Reduce/broadcast plan pair cached for the current member count.
    plans: Option<(CollectivePlan, CollectivePlan)>,
    /// Own executed clock when the previous step ended — the twin
    /// advances all positions by the observed inter-step delta, which is
    /// rank-uniform in a fault-free run.
    last_end_ms: Option<f64>,
    /// Twin clocks at the start of the current iteration (reused buffer).
    twin_t0: Vec<f64>,
    iterations: usize,
    executed_ms: f64,
    analytic_overlapped_ms: f64,
    analytic_serial_ms: f64,
    max_abs_dev_ms: f64,
    timelines: Vec<LayerTimeline>,
}

impl OverlapEngine {
    /// Builds the engine for a model with the given parameter segments
    /// (see [`Model::param_segments`]); `net` must be the cluster's cost
    /// model so analytic predictions price communication identically.
    /// The bucket collective defaults to the gTop-k tree; see
    /// [`OverlapEngine::with_algorithm`] for the zoo variants.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty (a model without parameters cannot
    /// be trained).
    pub fn new(
        cfg: &OverlapConfig,
        segments: &[usize],
        compute: Option<ComputeCost>,
        selector: Selector,
        rank: usize,
        net: CostModel,
    ) -> Self {
        Self::with_algorithm(
            cfg,
            segments,
            compute,
            selector,
            rank,
            net,
            Algorithm::GTopK,
        )
    }

    /// Builds the engine with an explicit per-bucket collective:
    /// [`Algorithm::GTopK`], [`Algorithm::OkTopk`], or
    /// [`Algorithm::SparDl`].
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, `algorithm` is not one of the
    /// plan-driven sparse collectives above, or a zoo algorithm is
    /// combined with a non-binomial topology (the zoo schedules are
    /// fixed halving/doubling exchanges).
    #[allow(clippy::too_many_arguments)]
    pub fn with_algorithm(
        cfg: &OverlapConfig,
        segments: &[usize],
        compute: Option<ComputeCost>,
        selector: Selector,
        rank: usize,
        net: CostModel,
        algorithm: Algorithm,
    ) -> Self {
        assert!(!segments.is_empty(), "model has no parameter segments");
        assert!(
            matches!(
                algorithm,
                Algorithm::GTopK | Algorithm::OkTopk | Algorithm::SparDl
            ),
            "the overlap engine drives per-bucket sparse collectives \
             (gtopk, oktopk or spardl); {} has none",
            algorithm.name()
        );
        assert!(
            cfg.topology == Topology::Binomial || algorithm == Algorithm::GTopK,
            "{} runs a fixed halving/doubling exchange schedule; \
             only the binomial topology applies",
            algorithm.name()
        );
        let m: usize = segments.iter().sum();
        let per_layer = backward_layer_costs(segments, compute);
        let costs = match cfg.buckets {
            BucketSpec::PerLayer => per_layer,
            BucketSpec::Count(n) => fuse_layers(&per_layer, n),
        };
        // Bucket 0 is the first produced by backward — the *top* of the
        // flat vector; walk downwards.
        let mut ranges = Vec::with_capacity(costs.len());
        let mut hi = m;
        for c in &costs {
            let lo = hi - c.params;
            ranges.push(lo..hi);
            hi = lo;
        }
        assert_eq!(hi, 0, "buckets must cover the whole flat vector");
        let sparsify_total = compute.map_or(0.0, |c| c.sparsify_ms);
        let sparsify = costs
            .iter()
            .map(|c| sparsify_total * c.params as f64 / m as f64)
            .collect();
        let residuals = ranges.iter().map(|r| Residual::new(r.len())).collect();
        let selectors = costs
            .iter()
            .map(|_| SelectorState::new(selector, rank))
            .collect();
        let zoo_scheds = vec![None; ranges.len()];
        OverlapEngine {
            ranges,
            costs,
            sparsify,
            residuals,
            selectors,
            net,
            topology: cfg.topology,
            algorithm,
            zoo_scheds,
            twin: PlanClock::new(1),
            twin_members: Vec::new(),
            plans: None,
            last_end_ms: None,
            twin_t0: Vec::new(),
            iterations: 0,
            executed_ms: 0.0,
            analytic_overlapped_ms: 0.0,
            analytic_serial_ms: 0.0,
            max_abs_dev_ms: 0.0,
            timelines: Vec::new(),
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.ranges.len()
    }

    /// Modeled compute charged per iteration (the full backward,
    /// distributed over the buckets), ms, before straggle scaling.
    /// Bucket costs fold sparsification in (readiness gates on both), so
    /// the sparsify share is subtracted back out for the timing split.
    pub fn compute_ms_per_iter(&self) -> f64 {
        self.costs.iter().map(|c| c.backward_ms).sum::<f64>() - self.sparsify_ms_per_iter()
    }

    /// Modeled sparsification charged per iteration, ms, before
    /// straggle scaling.
    pub fn sparsify_ms_per_iter(&self) -> f64 {
        self.sparsify.iter().sum()
    }

    /// Executes one overlapped iteration over `members` (the sorted,
    /// alive rank set — the full `0..P` when fault tolerance is off):
    /// for each bucket in backward order, waits until the bucket's
    /// gradient is ready on the simulated clock, accumulates `grad`'s
    /// slice into the bucket residual, extracts the bucket top-k
    /// (`k = bucket_k(params, rho)`), runs the plan-driven
    /// gTopKAllReduce over the members, puts rejected values back, and
    /// applies the averaged bucket update through
    /// [`MomentumSgd::step_range`].
    ///
    /// Collective tags are epoch-stamped (like the fault-tolerant serial
    /// path), so overlapped steps compose with crash recovery: after a
    /// membership change the plans are regenerated over the survivor
    /// positions and stale-epoch traffic can never be confused for live
    /// traffic.
    ///
    /// In parallel, the engine advances its [`PlanClock`] twin through
    /// the same plans; fault-free, the twin reproduces the executed
    /// timeline exactly (see [`OverlapStats::max_abs_dev_ms`]).
    ///
    /// `grad` is the full flat gradient of this iteration (backward has
    /// genuinely finished producing values; only the *clock* is staged
    /// per bucket). Returns the total non-zero count applied.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the communicator.
    ///
    /// # Panics
    ///
    /// Panics if `grad` does not span the bucketed flat vector,
    /// `rho ∉ (0, 1]`, or the calling rank is not in `members`.
    pub fn step(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        grad: &[f32],
        rho: f64,
        opt: &mut MomentumSgd,
        model: &mut dyn Model,
    ) -> Result<u64> {
        assert_eq!(grad.len(), self.ranges[0].end, "gradient length mismatch");
        assert!(rho > 0.0 && rho <= 1.0, "density must be in (0, 1]");
        let p = members.len();
        let my_pos = members
            .iter()
            .position(|&r| r == comm.rank())
            .expect("caller must be a member of the overlap group");
        if self.twin_members != members {
            // Membership changed (first step, or crash recovery): new
            // twin, new plans over the survivor positions.
            self.twin = PlanClock::new(p);
            self.twin_members = members.to_vec();
            self.plans = None;
            self.zoo_scheds.iter_mut().for_each(|s| *s = None);
            self.last_end_ms = None;
        }
        let tag_off = epoch_tag_offset(comm.epoch());
        let t0 = comm.now_ms();
        let straggle = comm.straggle_factor();
        let inv = 1.0 / p as f32;

        // Bring the twin to this iteration's start: everything charged
        // between steps (forward/backward compute, eval, liveness pings)
        // advances each rank by the same amount in a fault-free run, so
        // the own-rank delta applies to every position.
        if let Some(prev) = self.last_end_ms {
            let delta = t0 - prev;
            for pos in 0..p {
                self.twin.advance_compute(pos, delta);
            }
        }
        self.twin_t0.clear();
        self.twin_t0.extend((0..p).map(|pos| self.twin.now(pos)));

        let mut cum = 0.0f64;
        let mut nnz = 0u64;
        self.timelines.clear();
        for j in 0..self.ranges.len() {
            let range = self.ranges[j].clone();
            // Bucket costs already include the sparsify share.
            cum += self.costs[j].backward_ms;
            let ready = t0 + straggle * cum;
            // Gradient availability: the clock may already be past
            // `ready` if the previous bucket's collective held the
            // channel longer (FIFO) — wait_until never moves backwards.
            comm.wait_until(ready);
            let start = comm.now_ms();
            let k = bucket_k(range.len(), rho);
            // Fused accumulate + select over the bucket slice (one
            // memory pass for the threshold-estimate selector).
            let local = self.selectors[j].accumulate_extract(
                &mut self.residuals[j],
                &grad[range.clone()],
                k,
            );
            let is_zoo = matches!(self.algorithm, Algorithm::OkTopk | Algorithm::SparDl);
            let mut global = if is_zoo {
                let build = match self.algorithm {
                    Algorithm::OkTopk => ZooSchedule::oktopk,
                    _ => ZooSchedule::spardl,
                };
                let sched = match &mut self.zoo_scheds[j] {
                    Some(s) if s.p == p && s.k == k => &*s,
                    slot => &*slot.insert(build(p, k)),
                };
                let (global, rejects) =
                    sparse_zoo_all_reduce_over(comm, members, local, sched, tag_off)?;
                self.residuals[j].put_back(&rejects);
                comm.pool().put_sparse(rejects);
                global
            } else {
                let (global, gmask, tree_rejects) =
                    gtopk_all_reduce_over(comm, members, local.clone(), k, tag_off, self.topology)?;
                comm.pool().put_sparse(tree_rejects);
                let (_kept, rejected) = local.partition_by(&gmask);
                self.residuals[j].put_back(&rejected);
                global
            };
            global.scale(inv);
            nnz += global.nnz() as u64;
            opt.step_range(model, range, &global);
            self.timelines.push(LayerTimeline {
                ready_ms: ready - t0,
                start_ms: start - t0,
                end_ms: comm.now_ms() - t0,
            });

            // Twin replay of the same bucket: readiness gate, then the
            // exact collective plans — reduce + broadcast at 2k wire
            // elements each for gTop-k; the budget-padded split + gather
            // rounds for the zoo schedules.
            for pos in 0..p {
                self.twin.sync_to(pos, self.twin_t0[pos] + cum);
            }
            if is_zoo {
                let sched = self.zoo_scheds[j]
                    .as_ref()
                    .expect("schedule cached by the collective above");
                sched.charge(&mut self.twin, &self.net);
            } else {
                let (reduce, bcast) = self.plans.get_or_insert_with(|| {
                    let reduce = CollectivePlan::reduce(self.topology, p);
                    let bcast = CollectivePlan::broadcast(self.topology, p, reduce.root);
                    (reduce, bcast)
                });
                self.twin.charge_plan(&self.net, reduce, 2 * k);
                self.twin.charge_plan(&self.net, bcast, 2 * k);
            }
        }
        let span = comm.now_ms() - t0;
        let twin_span = self.twin.now(my_pos) - self.twin_t0[my_pos];
        self.last_end_ms = Some(comm.now_ms());
        debug_assert!(
            check_timeline_invariants(&self.timelines).is_ok(),
            "executed schedule violated timeline invariants: {:?}",
            check_timeline_invariants(&self.timelines)
        );

        let total_backward: f64 = self.costs.iter().map(|c| c.backward_ms).sum();
        let m = self.ranges[0].end;
        self.analytic_overlapped_ms += twin_span;
        let serial_coll_ms = match self.algorithm {
            Algorithm::OkTopk => oktopk_plan_ms(&self.net, p, bucket_k(m, rho)),
            Algorithm::SparDl => spardl_plan_ms(&self.net, p, bucket_k(m, rho)),
            _ => gtopk_allreduce_ms(&self.net, p, bucket_k(m, rho)),
        };
        self.analytic_serial_ms += total_backward + serial_coll_ms;
        if straggle == 1.0 && p == comm.size() {
            self.max_abs_dev_ms = self.max_abs_dev_ms.max((span - twin_span).abs());
        }
        self.executed_ms += span;
        self.iterations += 1;
        Ok(nnz)
    }

    /// Snapshot of the per-bucket training state (residuals and selector
    /// states) for checkpointing. The schedule twin and statistics are
    /// deliberately excluded — they describe the timeline, not the
    /// optimization state.
    pub fn snapshot(&self) -> OverlapSnapshot {
        OverlapSnapshot {
            residuals: self.residuals.iter().map(|r| r.dense().to_vec()).collect(),
            selectors: self.selectors.clone(),
        }
    }

    /// Restores per-bucket residuals and selector states from a
    /// checkpoint snapshot, and resets the schedule twin (a rollback
    /// breaks the clock continuity the twin relies on; it re-seeds on
    /// the next step).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's bucketization disagrees with this
    /// engine's.
    pub fn restore(&mut self, snap: &OverlapSnapshot) {
        assert_eq!(
            snap.residuals.len(),
            self.residuals.len(),
            "snapshot bucket count mismatch"
        );
        for (j, saved) in snap.residuals.iter().enumerate() {
            let mut fresh = Residual::new(self.ranges[j].len());
            fresh.accumulate(saved);
            self.residuals[j] = fresh;
        }
        self.selectors = snap.selectors.clone();
        self.twin_members.clear();
        self.last_end_ms = None;
    }

    /// Snapshot of the accumulated schedule statistics.
    pub fn stats(&self) -> OverlapStats {
        OverlapStats {
            buckets: self.ranges.len(),
            iterations: self.iterations,
            executed_overlapped_ms: self.executed_ms,
            analytic_overlapped_ms: self.analytic_overlapped_ms,
            analytic_serial_ms: self.analytic_serial_ms,
            max_abs_dev_ms: self.max_abs_dev_ms,
            timelines: self.timelines.clone(),
        }
    }
}

/// Checkpointable per-bucket training state of an [`OverlapEngine`]
/// (see [`OverlapEngine::snapshot`]).
#[derive(Debug, Clone)]
pub struct OverlapSnapshot {
    residuals: Vec<Vec<f32>>,
    selectors: Vec<SelectorState>,
}

impl OverlapSnapshot {
    /// Per-bucket dense residual copies, in backward bucket order.
    pub fn residuals(&self) -> &[Vec<f32>] {
        &self.residuals
    }

    /// Per-bucket selector states, in backward bucket order.
    pub fn selectors(&self) -> &[SelectorState] {
        &self.selectors
    }

    /// Reassembles a snapshot from serialized parts (durable-checkpoint
    /// decode path).
    ///
    /// # Panics
    ///
    /// Panics if the two lists disagree on the bucket count.
    pub fn from_parts(residuals: Vec<Vec<f32>>, selectors: Vec<SelectorState>) -> Self {
        assert_eq!(
            residuals.len(),
            selectors.len(),
            "bucket count mismatch between residuals and selectors"
        );
        OverlapSnapshot {
            residuals,
            selectors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};
    use gtopk_nn::models;

    #[test]
    fn bucket_ranges_cover_flat_vector_back_to_front() {
        let model = models::mlp(3, 8, 16, 4);
        let segments = gtopk_nn::Model::param_segments(&model);
        let m: usize = segments.iter().sum();
        let engine = OverlapEngine::new(
            &OverlapConfig::buckets(2),
            &segments,
            None,
            Selector::Exact,
            0,
            CostModel::zero(),
        );
        assert_eq!(engine.buckets(), 2);
        // Backward order: the first bucket ends at the top of the vector.
        let mut expect_hi = m;
        let mut covered = 0usize;
        for j in 0..engine.buckets() {
            let r = engine.ranges[j].clone();
            assert_eq!(r.end, expect_hi);
            expect_hi = r.start;
            covered += r.len();
        }
        assert_eq!(covered, m);
        assert_eq!(expect_hi, 0);
    }

    #[test]
    fn per_layer_spec_gives_one_bucket_per_segment() {
        let segments = [100usize, 50, 200];
        let engine = OverlapEngine::new(
            &OverlapConfig::per_layer(),
            &segments,
            None,
            Selector::Exact,
            0,
            CostModel::zero(),
        );
        assert_eq!(engine.buckets(), 3);
        // Backward order reverses the segment list.
        assert_eq!(engine.costs[0].params, 200);
        assert_eq!(engine.costs[2].params, 100);
    }

    #[test]
    fn backward_costs_distribute_compute_by_mass() {
        let costs = backward_layer_costs(
            &[100, 300],
            Some(ComputeCost {
                compute_ms: 8.0,
                sparsify_ms: 0.0,
            }),
        );
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0].params, 300); // backward order
        assert!((costs[0].backward_ms - 6.0).abs() < 1e-12);
        assert!((costs[1].backward_ms - 2.0).abs() < 1e-12);
        // Sparsification gates readiness too, so it folds into the basis.
        let with_sparsify = backward_layer_costs(
            &[100, 300],
            Some(ComputeCost {
                compute_ms: 8.0,
                sparsify_ms: 2.0,
            }),
        );
        assert!((with_sparsify[0].backward_ms - 7.5).abs() < 1e-12);
        assert!((with_sparsify[1].backward_ms - 2.5).abs() < 1e-12);
    }

    #[test]
    fn overlapped_steps_keep_replicas_identical() {
        // Four ranks run three overlapped iterations on deterministic
        // per-rank gradients; models must stay bit-identical.
        let p = 4usize;
        let segments = vec![24usize, 40];
        let m: usize = segments.iter().sum();
        let out = Cluster::new(p, CostModel::gigabit_ethernet()).run(move |comm| {
            let mut model = models::logistic(9, 7, 8); // 7*8+8 = 64 params
            assert_eq!(gtopk_nn::Model::num_params(&model), m);
            let mut opt = MomentumSgd::new(m, 0.1, 0.9);
            let mut engine = OverlapEngine::new(
                &OverlapConfig::buckets(2),
                &segments,
                Some(ComputeCost {
                    compute_ms: 4.0,
                    sparsify_ms: 0.0,
                }),
                Selector::Exact,
                comm.rank(),
                CostModel::gigabit_ethernet(),
            );
            let members: Vec<usize> = (0..comm.size()).collect();
            for it in 0..3u64 {
                let g: Vec<f32> = (0..m)
                    .map(|i| {
                        let h = (i as u64 + 7)
                            .wrapping_mul(comm.rank() as u64 + 3)
                            .wrapping_mul(it + 11)
                            .wrapping_mul(0x2545_f491_4f6c_dd1d);
                        ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                    })
                    .collect();
                engine
                    .step(comm, &members, &g, 0.1, &mut opt, &mut model)
                    .unwrap();
            }
            (
                gtopk_nn::Model::flat_params(&model),
                engine.stats(),
                comm.now_ms(),
            )
        });
        for (params, stats, now) in &out {
            assert_eq!(params, &out[0].0, "replicas diverged");
            check_timeline_invariants(&stats.timelines).unwrap();
            assert_eq!(stats.iterations, 3);
            // Power-of-two P, straggle-free: executed == analytic.
            assert!(
                stats.max_abs_dev_ms < 1e-6,
                "executed deviates from analytic by {} ms",
                stats.max_abs_dev_ms
            );
            assert!((now - out[0].2).abs() < 1e-9, "ranks finish together");
        }
    }

    #[test]
    fn zoo_overlap_keeps_replicas_identical_and_matches_twin_exactly() {
        // The zoo collectives are budget-padded, so the plan-clock twin
        // must reproduce the executed bucket timeline to float precision
        // — including non-power-of-two P (fold rounds).
        for &p in &[4usize, 5] {
            for alg in [Algorithm::OkTopk, Algorithm::SparDl] {
                let segments = vec![24usize, 40];
                let m: usize = segments.iter().sum();
                let out = Cluster::new(p, CostModel::gigabit_ethernet()).run(move |comm| {
                    let mut model = models::logistic(9, 7, 8);
                    let mut opt = MomentumSgd::new(m, 0.1, 0.9);
                    let mut engine = OverlapEngine::with_algorithm(
                        &OverlapConfig::buckets(2),
                        &segments,
                        Some(ComputeCost {
                            compute_ms: 4.0,
                            sparsify_ms: 0.0,
                        }),
                        Selector::Exact,
                        comm.rank(),
                        CostModel::gigabit_ethernet(),
                        alg,
                    );
                    let members: Vec<usize> = (0..comm.size()).collect();
                    for it in 0..3u64 {
                        let g: Vec<f32> = (0..m)
                            .map(|i| {
                                let h = (i as u64 + 7)
                                    .wrapping_mul(comm.rank() as u64 + 3)
                                    .wrapping_mul(it + 11)
                                    .wrapping_mul(0x2545_f491_4f6c_dd1d);
                                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                            })
                            .collect();
                        engine
                            .step(comm, &members, &g, 0.1, &mut opt, &mut model)
                            .unwrap();
                    }
                    (gtopk_nn::Model::flat_params(&model), engine.stats())
                });
                for (params, stats) in &out {
                    assert_eq!(params, &out[0].0, "{} P={p}: replicas diverged", alg.name());
                    check_timeline_invariants(&stats.timelines).unwrap();
                    assert!(
                        stats.max_abs_dev_ms < 1e-9,
                        "{} P={p}: executed deviates from analytic by {} ms",
                        alg.name(),
                        stats.max_abs_dev_ms
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "only the binomial topology applies")]
    fn zoo_overlap_rejects_non_binomial_topologies() {
        let _ = OverlapEngine::with_algorithm(
            &OverlapConfig::buckets(2).with_topology(Topology::Ring),
            &[16, 16],
            None,
            Selector::Exact,
            0,
            CostModel::zero(),
            Algorithm::SparDl,
        );
    }
}
