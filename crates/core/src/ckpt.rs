//! Durable on-disk checkpoints for elastic recovery.
//!
//! PR 3's fault tolerance keeps checkpoints in process memory, which is
//! exactly what a crashed *process* loses. This module persists the full
//! per-rank training state — model weights, optimizer momentum, the
//! error-feedback residual(s), selector RNG state, data-iterator
//! position, and per-epoch accounting — so a SIGKILLed rank can restart
//! from disk and rejoin the membership (see `gtopk::ft`).
//!
//! Layout of one checkpoint file:
//!
//! ```text
//! magic   u32  "GTKC" (0x4354_4b47 LE on disk)
//! version u32  = 1
//! crc     u32  CRC-32/IEEE over the payload bytes
//! len     u64  payload byte count
//! payload ...  sections (see `encode`)
//! ```
//!
//! Every dense `f32` vector section rides through the property-tested
//! [`gtopk_sparse::wire`] codec (as a fully-dense sparse vector), so the
//! same validated decoder that guards gradients on the TCP wire guards
//! the restart path: a truncated or bit-flipped section is *detected*,
//! never decoded into a plausible-but-wrong state. On top of that, the
//! whole-file CRC rejects torn writes before any section is parsed.
//!
//! Writes are atomic — tmp file, `fsync`, rename, directory `fsync` — and
//! a keep-last-N manifest bounds disk use while retaining enough history
//! for the rejoin protocol's rollback point (survivors may have rolled
//! back to a boundary up to one interval *before* this rank's newest
//! durable generation).

use crate::selector::{Selector, SelectorState};
use gtopk_sparse::{wire, SparseVec};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// File magic: `"GTKC"`.
const MAGIC: u32 = u32::from_le_bytes(*b"GTKC");
/// Format version.
const VERSION: u32 = 1;
/// Fixed header size: magic + version + crc + payload length.
const HEADER_BYTES: usize = 4 + 4 + 4 + 8;
/// Default number of generations retained per rank.
pub const DEFAULT_KEEP: usize = 3;

/// Decoding / validation failure of a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The buffer is shorter than its header or declared payload.
    Truncated {
        /// Bytes required.
        expected: usize,
        /// Bytes present.
        actual: usize,
    },
    /// Magic/version mismatch, CRC failure, or a malformed section.
    Corrupt {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { expected, actual } => {
                write!(
                    f,
                    "checkpoint truncated: need {expected} bytes, have {actual}"
                )
            }
            CkptError::Corrupt { reason } => write!(f, "checkpoint corrupt: {reason}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// Serializable snapshot of one selection kernel (the kind plus the raw
/// xoshiro256** stream position, so sampled kernels replay bit-exactly
/// after a process restart).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectorDump {
    /// The configured kernel.
    pub selector: Selector,
    /// Raw RNG state ([`SelectorState::rng_state`]).
    pub rng: [u64; 4],
}

impl SelectorDump {
    /// Captures a live selector state.
    pub fn capture(state: &SelectorState) -> Self {
        SelectorDump {
            selector: state.selector(),
            rng: state.rng_state(),
        }
    }

    /// Rebuilds the live state, continuing the RNG stream exactly.
    pub fn revive(&self) -> SelectorState {
        SelectorState::from_parts(self.selector, self.rng)
    }
}

/// Aggregation-engine state at a checkpoint boundary — the durable twin
/// of the trainer's in-memory engine snapshot, *including* the selector
/// state the in-memory path deliberately omits (a same-process rollback
/// keeps the kernel's RNG naturally; a process restart must persist it).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineState {
    /// Serial mode: the whole-vector error-feedback residual plus the
    /// aggregator's selector state (if one has been materialized).
    Serial {
        /// Dense residual copy.
        residual: Vec<f32>,
        /// Selector state, when the aggregator owns one.
        selector: Option<SelectorDump>,
    },
    /// Overlap mode: per-bucket residuals and selector states, in
    /// backward bucket order.
    Overlap {
        /// Per-bucket dense residual copies.
        residuals: Vec<Vec<f32>>,
        /// Per-bucket selector states.
        selectors: Vec<SelectorDump>,
    },
    /// Parameter-server mode: the worker's whole-vector residual. The
    /// regional selection is exact (no selector RNG) and servers are
    /// stateless between rounds, so the residual is the entire state.
    Ps {
        /// Dense residual copy.
        residual: Vec<f32>,
    },
}

/// The complete durable training state of one rank at an iteration
/// boundary. Restoring this on a fresh process and replaying from
/// `iter` is bit-identical to never having crashed.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableCheckpoint {
    /// Owning rank (sanity-checked on load).
    pub rank: u64,
    /// Global iteration this state corresponds to.
    pub iter: u64,
    /// Flat model parameters.
    pub params: Vec<f32>,
    /// Optimizer momentum buffer.
    pub velocity: Vec<f32>,
    /// Aggregation-engine state (residuals + selectors).
    pub engine: EngineState,
    /// DGC-style local momentum buffer, when momentum correction is on.
    pub local_velocity: Option<Vec<f32>>,
    /// Data iterator epoch ([`gtopk_data::BatchIter::position`]).
    pub data_epoch: u64,
    /// Data iterator cursor.
    pub data_cursor: u64,
    /// Partial loss accumulator of the in-flight epoch.
    pub epoch_loss: f64,
    /// Completed epochs' mean losses.
    pub losses: Vec<f64>,
    /// Completed epochs' eval accuracies.
    pub evals: Vec<Option<f64>>,
}

/// CRC-32/IEEE (the polynomial used by gzip/PNG), bitwise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a dense `f32` vector section through the sparse wire codec: a
/// fully-dense `SparseVec` (indices `0..n`), length-prefixed.
fn put_fvec(out: &mut Vec<u8>, v: &[f32]) {
    let sv = SparseVec::from_sorted(v.len(), (0..v.len() as u32).collect(), v.to_vec());
    let bytes = wire::encode(&sv);
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(&bytes);
}

fn put_selector(out: &mut Vec<u8>, s: &SelectorDump) {
    let (kind, sample) = match s.selector {
        Selector::Exact => (0u8, 0usize),
        Selector::Sampled { sample } => (1, sample),
        Selector::ThresholdEstimate { sample } => (2, sample),
    };
    out.push(kind);
    put_u64(out, sample as u64);
    for w in s.rng {
        put_u64(out, w);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.pos + n > self.buf.len() {
            return Err(CkptError::Truncated {
                expected: self.pos + n,
                actual: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn fvec(&mut self) -> Result<Vec<f32>, CkptError> {
        let n = self.u64()? as usize;
        let bytes = self.take(n)?;
        let sv = wire::decode(bytes).map_err(|_| CkptError::Corrupt {
            reason: "vector section failed wire validation",
        })?;
        if sv.nnz() != sv.dim() {
            return Err(CkptError::Corrupt {
                reason: "vector section is not fully dense",
            });
        }
        let (_dim, _indices, values) = sv.into_parts();
        Ok(values)
    }

    fn selector(&mut self) -> Result<SelectorDump, CkptError> {
        let kind = self.u8()?;
        let sample = self.u64()? as usize;
        let selector = match kind {
            0 => Selector::Exact,
            1 => Selector::Sampled { sample },
            2 => Selector::ThresholdEstimate { sample },
            _ => {
                return Err(CkptError::Corrupt {
                    reason: "unknown selector kind",
                })
            }
        };
        let mut rng = [0u64; 4];
        for w in &mut rng {
            *w = self.u64()?;
        }
        Ok(SelectorDump { selector, rng })
    }
}

/// Serializes a checkpoint to its on-disk byte representation (header +
/// CRC-protected payload).
pub fn encode(c: &DurableCheckpoint) -> Vec<u8> {
    let mut p = Vec::new();
    put_u64(&mut p, c.rank);
    put_u64(&mut p, c.iter);
    put_u64(&mut p, c.data_epoch);
    put_u64(&mut p, c.data_cursor);
    put_f64(&mut p, c.epoch_loss);
    let mode = match &c.engine {
        EngineState::Serial { .. } => 0u8,
        EngineState::Overlap { .. } => 1,
        EngineState::Ps { .. } => 4,
    };
    p.push(mode | if c.local_velocity.is_some() { 2 } else { 0 });
    put_fvec(&mut p, &c.params);
    put_fvec(&mut p, &c.velocity);
    if let Some(lv) = &c.local_velocity {
        put_fvec(&mut p, lv);
    }
    match &c.engine {
        EngineState::Serial { residual, selector } => {
            put_fvec(&mut p, residual);
            match selector {
                Some(s) => {
                    p.push(1);
                    put_selector(&mut p, s);
                }
                None => p.push(0),
            }
        }
        EngineState::Overlap {
            residuals,
            selectors,
        } => {
            assert_eq!(residuals.len(), selectors.len(), "bucket count mismatch");
            put_u64(&mut p, residuals.len() as u64);
            for (r, s) in residuals.iter().zip(selectors) {
                put_fvec(&mut p, r);
                put_selector(&mut p, s);
            }
        }
        EngineState::Ps { residual } => put_fvec(&mut p, residual),
    }
    put_u64(&mut p, c.losses.len() as u64);
    for &l in &c.losses {
        put_f64(&mut p, l);
    }
    put_u64(&mut p, c.evals.len() as u64);
    for e in &c.evals {
        match e {
            Some(v) => {
                p.push(1);
                put_f64(&mut p, *v);
            }
            None => p.push(0),
        }
    }

    let mut out = Vec::with_capacity(HEADER_BYTES + p.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&p).to_le_bytes());
    out.extend_from_slice(&(p.len() as u64).to_le_bytes());
    out.extend_from_slice(&p);
    out
}

/// Deserializes and fully validates a checkpoint from bytes.
///
/// # Errors
///
/// [`CkptError::Truncated`] when the buffer is shorter than declared;
/// [`CkptError::Corrupt`] on magic/version/CRC mismatch or any section
/// failing validation. A partial or bit-flipped file can never decode.
pub fn decode(bytes: &[u8]) -> Result<DurableCheckpoint, CkptError> {
    if bytes.len() < HEADER_BYTES {
        return Err(CkptError::Truncated {
            expected: HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CkptError::Corrupt {
            reason: "bad magic",
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CkptError::Corrupt {
            reason: "unsupported version",
        });
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    if bytes.len() < HEADER_BYTES + len {
        return Err(CkptError::Truncated {
            expected: HEADER_BYTES + len,
            actual: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_BYTES..HEADER_BYTES + len];
    if crc32(payload) != crc {
        return Err(CkptError::Corrupt {
            reason: "payload CRC mismatch",
        });
    }
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let rank = r.u64()?;
    let iter = r.u64()?;
    let data_epoch = r.u64()?;
    let data_cursor = r.u64()?;
    let epoch_loss = r.f64()?;
    let flags = r.u8()?;
    let params = r.fvec()?;
    let velocity = r.fvec()?;
    let local_velocity = if flags & 2 != 0 {
        Some(r.fvec()?)
    } else {
        None
    };
    let engine = if flags & 4 != 0 {
        EngineState::Ps {
            residual: r.fvec()?,
        }
    } else if flags & 1 == 0 {
        let residual = r.fvec()?;
        let selector = if r.u8()? != 0 {
            Some(r.selector()?)
        } else {
            None
        };
        EngineState::Serial { residual, selector }
    } else {
        let n = r.u64()? as usize;
        if n > 1 << 20 {
            return Err(CkptError::Corrupt {
                reason: "implausible bucket count",
            });
        }
        let mut residuals = Vec::with_capacity(n);
        let mut selectors = Vec::with_capacity(n);
        for _ in 0..n {
            residuals.push(r.fvec()?);
            selectors.push(r.selector()?);
        }
        EngineState::Overlap {
            residuals,
            selectors,
        }
    };
    let n_losses = r.u64()? as usize;
    if n_losses > 1 << 24 {
        return Err(CkptError::Corrupt {
            reason: "implausible loss count",
        });
    }
    let mut losses = Vec::with_capacity(n_losses);
    for _ in 0..n_losses {
        losses.push(r.f64()?);
    }
    let n_evals = r.u64()? as usize;
    if n_evals > 1 << 24 {
        return Err(CkptError::Corrupt {
            reason: "implausible eval count",
        });
    }
    let mut evals = Vec::with_capacity(n_evals);
    for _ in 0..n_evals {
        evals.push(if r.u8()? != 0 { Some(r.f64()?) } else { None });
    }
    Ok(DurableCheckpoint {
        rank,
        iter,
        params,
        velocity,
        engine,
        local_velocity,
        data_epoch,
        data_cursor,
        epoch_loss,
        losses,
        evals,
    })
}

// ---------------------------------------------------------------------
// On-disk store
// ---------------------------------------------------------------------

/// A per-rank durable checkpoint directory: atomic generation writes, a
/// keep-last-N manifest, and corrupt-fallback loading.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    rank: usize,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store for `rank` under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>, rank: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            rank,
            keep: DEFAULT_KEEP,
        })
    }

    /// Same store with a different retention depth (`keep >= 1`).
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        assert!(keep >= 1, "must retain at least one generation");
        self.keep = keep;
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(&self, iter: u64) -> String {
        format!("ckpt-{:04}-{:012}.bin", self.rank, iter)
    }

    fn manifest_name(&self) -> String {
        format!("manifest-{:04}.txt", self.rank)
    }

    /// Atomically writes `bytes` to `dir/name`: tmp file, `fsync`,
    /// rename, directory `fsync`. A crash at any point leaves either the
    /// old file or the new one — never a torn mix.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!(".tmp-{}-{name}", std::process::id()));
        let final_path = self.dir.join(name);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Persist the rename itself.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Durably saves one generation and prunes beyond the retention
    /// depth. The manifest is rewritten (atomically) after the data file
    /// is safely in place.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the store is left consistent (at worst
    /// the new generation exists without a manifest entry, which the
    /// scan fallback still finds).
    ///
    /// # Panics
    ///
    /// Panics if `state.rank` disagrees with the store's rank.
    pub fn save(&self, state: &DurableCheckpoint) -> io::Result<()> {
        assert_eq!(state.rank as usize, self.rank, "rank mismatch");
        self.write_atomic(&self.file_name(state.iter), &encode(state))?;
        let mut gens = self.scan_generations();
        while gens.len() > self.keep {
            let oldest = gens.remove(0);
            let _ = fs::remove_file(self.dir.join(self.file_name(oldest)));
        }
        let manifest: String = gens.iter().map(|g| format!("{g}\n")).collect();
        self.write_atomic(&self.manifest_name(), manifest.as_bytes())
    }

    /// Generations currently on disk for this rank, ascending. Reads the
    /// manifest when present and intact, otherwise scans the directory —
    /// so a crash between data write and manifest write loses nothing.
    pub fn generations(&self) -> Vec<u64> {
        if let Ok(text) = fs::read_to_string(self.dir.join(self.manifest_name())) {
            let parsed: Option<Vec<u64>> = text
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| l.trim().parse().ok())
                .collect();
            if let Some(mut gens) = parsed {
                gens.sort_unstable();
                // The scan union covers generations written after the
                // last manifest update (crash window).
                let scanned = self.scan_generations();
                for g in scanned {
                    if !gens.contains(&g) {
                        gens.push(g);
                    }
                }
                gens.sort_unstable();
                gens.retain(|g| self.dir.join(self.file_name(*g)).exists());
                return gens;
            }
        }
        self.scan_generations()
    }

    fn scan_generations(&self) -> Vec<u64> {
        let prefix = format!("ckpt-{:04}-", self.rank);
        let mut gens: Vec<u64> = fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| {
                    let name = e.ok()?.file_name().into_string().ok()?;
                    let rest = name.strip_prefix(&prefix)?.strip_suffix(".bin")?;
                    rest.parse().ok()
                })
                .collect()
            })
            .unwrap_or_default();
        gens.sort_unstable();
        gens
    }

    /// Loads and validates one specific generation.
    ///
    /// # Errors
    ///
    /// [`CkptError`] as for [`decode`]; unreadable files surface as
    /// [`CkptError::Corrupt`].
    pub fn load(&self, iter: u64) -> Result<DurableCheckpoint, CkptError> {
        let path = self.dir.join(self.file_name(iter));
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|_| CkptError::Corrupt {
                reason: "checkpoint file unreadable",
            })?;
        let c = decode(&bytes)?;
        if c.iter != iter || c.rank as usize != self.rank {
            return Err(CkptError::Corrupt {
                reason: "checkpoint identity mismatch",
            });
        }
        Ok(c)
    }

    /// Loads the newest generation that validates, walking backwards
    /// past truncated/corrupt files. Returns the state plus the number
    /// of newer generations that were rejected (0 on the happy path);
    /// `None` when no generation validates.
    pub fn load_latest(&self) -> Option<(DurableCheckpoint, usize)> {
        let gens = self.generations();
        for (skipped, &g) in gens.iter().rev().enumerate() {
            if let Ok(c) = self.load(g) {
                return Some((c, skipped));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_ckpt(iter: u64, overlap: bool) -> DurableCheckpoint {
        let engine = if overlap {
            EngineState::Overlap {
                residuals: vec![vec![1.0, -2.0], vec![0.0, 3.5, -0.25]],
                selectors: vec![
                    SelectorDump {
                        selector: Selector::ThresholdEstimate { sample: 64 },
                        rng: [1, 2, 3, 4],
                    },
                    SelectorDump {
                        selector: Selector::Exact,
                        rng: [5, 6, 7, 8],
                    },
                ],
            }
        } else {
            EngineState::Serial {
                residual: vec![0.5, 0.0, -1.5],
                selector: Some(SelectorDump {
                    selector: Selector::Sampled { sample: 16 },
                    rng: [9, 10, 11, 12],
                }),
            }
        };
        DurableCheckpoint {
            rank: 2,
            iter,
            params: vec![1.0, -0.5, 0.25, 3.0],
            velocity: vec![0.1, 0.2, -0.3, 0.0],
            engine,
            local_velocity: if overlap { None } else { Some(vec![7.0; 4]) },
            data_epoch: 3,
            data_cursor: 40,
            epoch_loss: 1.234,
            losses: vec![2.0, 1.5, 1.1],
            evals: vec![None, Some(0.75), Some(0.8)],
        }
    }

    #[test]
    fn roundtrip_serial_and_overlap() {
        for overlap in [false, true] {
            let c = sample_ckpt(40, overlap);
            assert_eq!(decode(&encode(&c)).unwrap(), c, "overlap={overlap}");
        }
    }

    #[test]
    fn roundtrip_ps() {
        let mut c = sample_ckpt(25, false);
        c.engine = EngineState::Ps {
            residual: vec![0.25, -0.0, 1.5, f32::MIN_POSITIVE],
        };
        let back = decode(&encode(&c)).unwrap();
        assert_eq!(back, c);
        // PartialEq treats -0.0 == +0.0; pin the sign bit explicitly so
        // a restored PS residual replays bit-identically.
        match back.engine {
            EngineState::Ps { residual } => {
                assert_eq!(residual[1].to_bits(), (-0.0f32).to_bits());
            }
            other => panic!("decoded into {other:?}"),
        }
    }

    #[test]
    fn crc_rejects_any_flipped_payload_byte() {
        let bytes = encode(&sample_ckpt(10, false));
        for pos in [HEADER_BYTES, HEADER_BYTES + 9, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(decode(&bad), Err(CkptError::Corrupt { .. })),
                "flip at {pos} must be caught"
            );
        }
    }

    #[test]
    fn truncation_always_detected() {
        let bytes = encode(&sample_ckpt(10, true));
        for cut in [0, 3, HEADER_BYTES - 1, HEADER_BYTES + 5, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(CkptError::Truncated { .. })),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let bytes = encode(&sample_ckpt(10, false));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode(&bad), Err(CkptError::Corrupt { .. })));
        let mut v2 = bytes;
        v2[4] = 99;
        assert!(matches!(decode(&v2), Err(CkptError::Corrupt { .. })));
    }

    #[test]
    fn store_saves_prunes_and_reloads() {
        let dir = std::env::temp_dir().join(format!("gtopk-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 2).unwrap().with_keep(3);
        for it in (0..60).step_by(10) {
            store.save(&sample_ckpt(it, false)).unwrap();
        }
        assert_eq!(store.generations(), vec![30, 40, 50], "keep-3 pruning");
        let (latest, skipped) = store.load_latest().unwrap();
        assert_eq!(latest.iter, 50);
        assert_eq!(skipped, 0);
        assert_eq!(store.load(30).unwrap().iter, 30);
        // No tmp litter after atomic writes.
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(litter.is_empty(), "tmp files must not survive a save");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_newest_generation_falls_back_to_previous() {
        let dir = std::env::temp_dir().join(format!("gtopk-ckpt-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 2).unwrap();
        store.save(&sample_ckpt(10, true)).unwrap();
        store.save(&sample_ckpt(20, true)).unwrap();
        // Tear the newest file: truncate to half.
        let newest = dir.join("ckpt-0002-000000000020.bin");
        let full = fs::read(&newest).unwrap();
        fs::write(&newest, &full[..full.len() / 2]).unwrap();
        let (c, skipped) = store.load_latest().unwrap();
        assert_eq!(c.iter, 10, "must fall back past the torn file");
        assert_eq!(skipped, 1, "one rejected generation");
        // Bit-flip the survivor too: nothing valid remains.
        let prev = dir.join("ckpt-0002-000000000010.bin");
        let mut bytes = fs::read(&prev).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&prev, &bytes).unwrap();
        assert!(
            store.load_latest().is_none(),
            "all-corrupt store yields none"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32/IEEE("123456789") = 0xCBF43926 — the standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    proptest! {
        /// Arbitrary checkpoints roundtrip bit-exactly through the
        /// full encode/decode path (values compared via bit patterns).
        #[test]
        fn prop_roundtrip(
            iter in 0u64..1_000_000,
            params in proptest::collection::vec(-1e6f32..1e6, 0..64),
            velocity in proptest::collection::vec(-1e3f32..1e3, 0..64),
            residual in proptest::collection::vec(-1e3f32..1e3, 0..64),
            losses in proptest::collection::vec(-1e3f64..1e3, 0..8),
            epoch_loss in -1e3f64..1e3,
            r0 in 0u64..u64::MAX,
            r1 in 0u64..u64::MAX,
            r2 in 0u64..u64::MAX,
            r3 in 0u64..u64::MAX,
            mode in 0u8..4,
        ) {
            let (overlap, with_sel) = (mode & 1 != 0, mode & 2 != 0);
            let sel = SelectorDump {
                selector: Selector::ThresholdEstimate { sample: 32 },
                rng: [r0, r1, r2, r3],
            };
            let engine = if overlap {
                EngineState::Overlap {
                    residuals: vec![residual.clone(), params.clone()],
                    selectors: vec![sel.clone(), sel.clone()],
                }
            } else {
                EngineState::Serial {
                    residual: residual.clone(),
                    selector: if with_sel { Some(sel) } else { None },
                }
            };
            let c = DurableCheckpoint {
                rank: 1,
                iter,
                params,
                velocity,
                engine,
                local_velocity: None,
                data_epoch: iter / 100,
                data_cursor: iter % 97,
                epoch_loss,
                losses: losses.clone(),
                evals: losses.iter().map(|&l| if l > 0.0 { Some(l) } else { None }).collect(),
            };
            let back = decode(&encode(&c)).unwrap();
            prop_assert_eq!(back.iter, c.iter);
            for (a, b) in back.params.iter().zip(c.params.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(back, c);
        }

        /// Every strict prefix of a valid checkpoint file is rejected.
        #[test]
        fn prop_truncation_detected(
            n in 0usize..32,
            cut_frac in 0.0f64..1.0,
        ) {
            let mut c = sample_ckpt(7, false);
            c.params = (0..n).map(|i| i as f32).collect();
            let bytes = encode(&c);
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(decode(&bytes[..cut]).is_err());
        }
    }
}
