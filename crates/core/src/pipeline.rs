//! Layer-wise sparsification with compute/communication overlap — the
//! paper's stated future work (§VII: "we would like to investigate
//! layer-wise sparsification such that the communication overheads can
//! be further overlapped by the computation tasks", citing MG-WFBP).
//!
//! This module models the schedule analytically on top of the α-β
//! network: backward-propagation produces layer gradients from the
//! output layer backwards; each layer's (or fused bucket's)
//! gTopKAllReduce may start as soon as its gradient is ready *and* the
//! network is free (single FIFO channel), overlapping communication of
//! early-finishing layers with the computation of the remaining ones.

use gtopk_comm::CostModel;
use gtopk_perfmodel::gtopk_allreduce_ms;

/// Cost description of one layer (or fused bucket of layers).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCost {
    /// Parameter count of the layer.
    pub params: usize,
    /// Backward-propagation compute time for the layer, ms.
    pub backward_ms: f64,
}

/// Timeline of one layer's aggregation within the pipelined schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTimeline {
    /// When the layer's gradient becomes available (cumulative backward).
    pub ready_ms: f64,
    /// When its aggregation starts (network FIFO).
    pub start_ms: f64,
    /// When its aggregation completes.
    pub end_ms: f64,
}

/// Result of a pipelined-schedule simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Baseline: full backward, then one whole-model gTopKAllReduce.
    pub serial_ms: f64,
    /// Pipelined completion time (last aggregation finished).
    pub overlapped_ms: f64,
    /// Per-layer (bucket) timelines in backward order.
    pub timelines: Vec<LayerTimeline>,
}

impl PipelineReport {
    /// Speedup of the pipelined schedule over the serial baseline.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.overlapped_ms
    }
}

/// `k` for a bucket under density `rho` (at least 1).
///
/// The analytic schedules and the executed overlap engine both size
/// per-bucket selections through this single function, so their
/// communication volumes agree exactly.
pub fn bucket_k(params: usize, rho: f64) -> usize {
    ((params as f64 * rho).round() as usize).clamp(1, params.max(1))
}

/// Checks the invariants every pipelined schedule — analytic or executed —
/// must satisfy: `ready ≤ start ≤ end` per bucket, monotone readiness
/// (backward produces buckets in order), and FIFO non-overlap (a bucket's
/// collective starts no earlier than the previous one ended).
///
/// Returns a description of the first violation, or `Ok(())`.
///
/// # Errors
///
/// Returns `Err` with a human-readable description naming the offending
/// bucket index and the two times that disagree.
pub fn check_timeline_invariants(timelines: &[LayerTimeline]) -> Result<(), String> {
    let tol = 1e-9;
    for (i, t) in timelines.iter().enumerate() {
        if !(t.ready_ms.is_finite() && t.start_ms.is_finite() && t.end_ms.is_finite()) {
            return Err(format!("bucket {i}: non-finite timeline {t:?}"));
        }
        if t.start_ms < t.ready_ms - tol {
            return Err(format!(
                "bucket {i}: starts at {} before ready at {}",
                t.start_ms, t.ready_ms
            ));
        }
        if t.end_ms < t.start_ms - tol {
            return Err(format!(
                "bucket {i}: ends at {} before start at {}",
                t.end_ms, t.start_ms
            ));
        }
        if i > 0 {
            let prev = &timelines[i - 1];
            if t.ready_ms < prev.ready_ms - tol {
                return Err(format!(
                    "bucket {i}: ready at {} before bucket {} at {}",
                    t.ready_ms,
                    i - 1,
                    prev.ready_ms
                ));
            }
            if t.start_ms < prev.end_ms - tol {
                return Err(format!(
                    "bucket {i}: starts at {} while bucket {} holds the channel until {}",
                    t.start_ms,
                    i - 1,
                    prev.end_ms
                ));
            }
        }
    }
    Ok(())
}

/// Simulates the layer-wise pipelined schedule.
///
/// `layers` are listed in **backward execution order** (output layer
/// first). Each entry may be a single layer or a pre-fused bucket.
///
/// # Panics
///
/// Panics if `layers` is empty, `p == 0`, or `rho ∉ (0, 1]`.
pub fn simulate_layerwise(
    layers: &[LayerCost],
    net: &CostModel,
    p: usize,
    rho: f64,
) -> PipelineReport {
    assert!(!layers.is_empty(), "need at least one layer");
    assert!(p > 0, "worker count must be positive");
    assert!(rho > 0.0 && rho <= 1.0, "density must be in (0, 1]");

    let total_params: usize = layers.iter().map(|l| l.params).sum();
    let total_backward: f64 = layers.iter().map(|l| l.backward_ms).sum();
    let serial_comm = gtopk_allreduce_ms(net, p, bucket_k(total_params, rho));
    let serial_ms = total_backward + serial_comm;

    let mut timelines = Vec::with_capacity(layers.len());
    let mut ready = 0.0f64;
    let mut channel_free = 0.0f64;
    for layer in layers {
        ready += layer.backward_ms;
        let start = ready.max(channel_free);
        let comm = gtopk_allreduce_ms(net, p, bucket_k(layer.params, rho));
        let end = start + comm;
        channel_free = end;
        timelines.push(LayerTimeline {
            ready_ms: ready,
            start_ms: start,
            end_ms: end,
        });
    }
    let overlapped_ms = timelines.last().expect("non-empty").end_ms;
    PipelineReport {
        serial_ms,
        overlapped_ms,
        timelines,
    }
}

/// Fuses consecutive layers into `buckets` groups of roughly equal
/// parameter mass (wait-free buckets in MG-WFBP's spirit), then
/// simulates the pipelined schedule over the buckets.
///
/// Fusing trades per-message latency (fewer α terms) against overlap
/// granularity; the sweep over `buckets` is the ablation the extension
/// experiment runs.
///
/// # Panics
///
/// Same conditions as [`simulate_layerwise`], plus `buckets >= 1`.
pub fn simulate_fused(
    layers: &[LayerCost],
    buckets: usize,
    net: &CostModel,
    p: usize,
    rho: f64,
) -> PipelineReport {
    assert!(buckets >= 1, "need at least one bucket");
    let fused = fuse_layers(layers, buckets);
    simulate_layerwise(&fused, net, p, rho)
}

/// Greedy contiguous fusion into `buckets` groups of roughly equal
/// parameter mass.
pub fn fuse_layers(layers: &[LayerCost], buckets: usize) -> Vec<LayerCost> {
    assert!(!layers.is_empty(), "need at least one layer");
    let buckets = buckets.min(layers.len()).max(1);
    let total: usize = layers.iter().map(|l| l.params).sum();
    let target = total as f64 / buckets as f64;
    let mut out: Vec<LayerCost> = Vec::with_capacity(buckets);
    let mut acc = LayerCost {
        params: 0,
        backward_ms: 0.0,
    };
    for (i, l) in layers.iter().enumerate() {
        acc.params += l.params;
        acc.backward_ms += l.backward_ms;
        let remaining_layers = layers.len() - i - 1;
        let remaining_buckets = buckets - out.len() - 1;
        let over_target = (acc.params as f64) >= target * (1.0 - 1e-9);
        if (over_target && out.len() + 1 < buckets) || remaining_layers == remaining_buckets {
            out.push(std::mem::replace(
                &mut acc,
                LayerCost {
                    params: 0,
                    backward_ms: 0.0,
                },
            ));
        }
    }
    if acc.params > 0 || acc.backward_ms > 0.0 {
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> CostModel {
        CostModel::gigabit_ethernet()
    }

    #[test]
    fn single_layer_pipelining_is_a_noop() {
        let layers = [LayerCost {
            params: 1_000_000,
            backward_ms: 100.0,
        }];
        let r = simulate_layerwise(&layers, &net(), 32, 0.001);
        assert!((r.serial_ms - r.overlapped_ms).abs() < 1e-9);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_layer_overlap_hides_first_communication() {
        // Layer A ready early; its comm hides entirely behind layer B's
        // backward when backward is long enough.
        let layers = [
            LayerCost {
                params: 1_000_000,
                backward_ms: 10.0,
            },
            LayerCost {
                params: 1_000_000,
                backward_ms: 500.0,
            },
        ];
        let r = simulate_layerwise(&layers, &net(), 32, 0.001);
        // First comm starts at 10ms, finishes well before 510ms.
        assert!(r.timelines[0].end_ms < 510.0);
        // Second comm starts exactly when its gradient is ready.
        assert!((r.timelines[1].start_ms - 510.0).abs() < 1e-9);
        assert!(r.overlapped_ms < r.serial_ms);
    }

    #[test]
    fn fifo_channel_serializes_communications() {
        // Both gradients ready almost immediately: comms must queue.
        let layers = [
            LayerCost {
                params: 2_000_000,
                backward_ms: 0.1,
            },
            LayerCost {
                params: 2_000_000,
                backward_ms: 0.1,
            },
        ];
        let r = simulate_layerwise(&layers, &net(), 32, 0.001);
        assert!((r.timelines[1].start_ms - r.timelines[0].end_ms).abs() < 1e-9);
    }

    #[test]
    fn many_tiny_layers_pay_latency_and_fusion_recovers() {
        // 64 small layers: 64× the α·logP cost. Fusing into 4 buckets
        // must beat both the unfused pipeline and approach serial comm
        // cost while retaining overlap.
        let layers: Vec<LayerCost> = (0..64)
            .map(|_| LayerCost {
                params: 100_000,
                backward_ms: 2.0,
            })
            .collect();
        let unfused = simulate_layerwise(&layers, &net(), 32, 0.001);
        let fused = simulate_fused(&layers, 4, &net(), 32, 0.001);
        assert!(
            fused.overlapped_ms < unfused.overlapped_ms,
            "fused {} !< unfused {}",
            fused.overlapped_ms,
            unfused.overlapped_ms
        );
    }

    #[test]
    fn fusion_preserves_totals() {
        let layers: Vec<LayerCost> = (1..=10)
            .map(|i| LayerCost {
                params: i * 1000,
                backward_ms: i as f64,
            })
            .collect();
        for buckets in [1usize, 2, 3, 5, 10, 20] {
            let fused = fuse_layers(&layers, buckets);
            assert!(fused.len() <= buckets.min(layers.len()));
            let params: usize = fused.iter().map(|l| l.params).sum();
            let back: f64 = fused.iter().map(|l| l.backward_ms).sum();
            assert_eq!(params, 55_000, "buckets={buckets}");
            assert!((back - 55.0).abs() < 1e-9);
        }
    }

    #[test]
    fn analytic_schedules_satisfy_timeline_invariants() {
        let layers: Vec<LayerCost> = (1..=12)
            .map(|i| LayerCost {
                params: i * 50_000,
                backward_ms: (i % 5) as f64 + 0.5,
            })
            .collect();
        for p in [2usize, 4, 32] {
            for buckets in [1usize, 2, 4, 12] {
                let r = simulate_fused(&layers, buckets, &net(), p, 0.001);
                check_timeline_invariants(&r.timelines).unwrap();
            }
        }
    }

    #[test]
    fn invariant_checker_rejects_violations() {
        let ok = LayerTimeline {
            ready_ms: 1.0,
            start_ms: 2.0,
            end_ms: 3.0,
        };
        assert!(check_timeline_invariants(std::slice::from_ref(&ok)).is_ok());
        let starts_before_ready = LayerTimeline {
            ready_ms: 2.0,
            start_ms: 1.0,
            end_ms: 3.0,
        };
        assert!(check_timeline_invariants(&[starts_before_ready]).is_err());
        let overlaps_channel = LayerTimeline {
            ready_ms: 2.5,
            start_ms: 2.5,
            end_ms: 4.0,
        };
        assert!(check_timeline_invariants(&[ok, overlaps_channel]).is_err());
    }

    #[test]
    fn overlap_never_exceeds_serial_when_comm_dominates() {
        // With enormous comm and tiny compute, pipelining cannot help
        // (the channel is the bottleneck) but per-layer α overhead makes
        // it slightly worse — speedup <= 1.
        let layers: Vec<LayerCost> = (0..8)
            .map(|_| LayerCost {
                params: 10_000_000,
                backward_ms: 0.01,
            })
            .collect();
        let r = simulate_layerwise(&layers, &net(), 32, 0.001);
        assert!(r.speedup() <= 1.0 + 1e-9, "speedup {}", r.speedup());
    }
}
