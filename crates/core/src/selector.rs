//! Local top-k selection kernel choice.
//!
//! The paper's Fig. 11 flags local sparsification as a real per-iteration
//! overhead ("Top-k selection on GPU is inefficient... We will leave this
//! as our future optimization direction"). This module makes the
//! selection kernel a configuration axis: the exact quickselect, or the
//! cheaper sampled-threshold estimation.

use gtopk_sparse::{Residual, SparseVec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which kernel extracts the local top-k from the residual buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selector {
    /// Exact top-k via expected-O(m) quickselect (default).
    #[default]
    Exact,
    /// Sampled-threshold estimation with the given sample size —
    /// exactly `k` coordinates are still returned, but the threshold is
    /// estimated from a sample instead of a full selection pass.
    Sampled {
        /// Number of magnitude samples used to estimate the threshold.
        sample: usize,
    },
    /// Sampling-estimated threshold with exact-`k` fixup: one O(m)
    /// single pass collects strictly-above-threshold candidates and an
    /// exact select over the (small) candidate set finishes the job. The
    /// result is **bitwise identical** to [`Selector::Exact`] — only the
    /// selection cost is probabilistic (it falls back to the exact kernel
    /// when the estimate overshoots).
    ThresholdEstimate {
        /// Number of magnitude samples used to estimate the threshold.
        sample: usize,
    },
}

/// Per-rank selector state (the sampled kernel needs an RNG stream that
/// is deterministic per rank).
#[derive(Debug, Clone)]
pub struct SelectorState {
    selector: Selector,
    rng: StdRng,
}

impl SelectorState {
    /// Creates state for one rank; `rank` decorrelates RNG streams.
    pub fn new(selector: Selector, rank: usize) -> Self {
        SelectorState {
            selector,
            rng: StdRng::seed_from_u64(0xc0ffee ^ (rank as u64).wrapping_mul(0x9e37_79b9)),
        }
    }

    /// The configured selector.
    pub fn selector(&self) -> Selector {
        self.selector
    }

    /// Raw RNG state, for exact serialization in durable checkpoints (the
    /// sampled kernels' threshold draws must replay bit-identically after
    /// a process restart).
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds selector state from its parts (see
    /// [`SelectorState::rng_state`]), continuing the RNG stream exactly.
    pub fn from_parts(selector: Selector, rng_state: [u64; 4]) -> Self {
        SelectorState {
            selector,
            rng: StdRng::from_state(rng_state),
        }
    }

    /// Extracts `min(k, dim)` coordinates from the residual using the
    /// configured kernel (zeroing them in the buffer).
    pub fn extract(&mut self, residual: &mut Residual, k: usize) -> SparseVec {
        match self.selector {
            Selector::Exact => residual.extract_topk(k),
            Selector::Sampled { sample } => residual.extract_topk_sampled(k, sample, &mut self.rng),
            Selector::ThresholdEstimate { sample } => {
                residual.extract_topk_threshold(k, sample, &mut self.rng)
            }
        }
    }

    /// Accumulates this iteration's gradient into the residual and
    /// extracts `min(k, dim)` coordinates, in one call.
    ///
    /// For [`Selector::ThresholdEstimate`] this takes the fused
    /// accumulate + threshold-scan + compact kernel
    /// ([`Residual::accumulate_extract_threshold`]) — one memory pass
    /// over the buffer instead of three, bitwise identical to the
    /// unfused sequence. The other selectors accumulate and then extract
    /// exactly as before.
    pub fn accumulate_extract(
        &mut self,
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> SparseVec {
        match self.selector {
            Selector::ThresholdEstimate { sample } => {
                residual.accumulate_extract_threshold(grad, k, sample, &mut self.rng)
            }
            Selector::Exact | Selector::Sampled { .. } => {
                residual.accumulate(grad);
                self.extract(residual, k)
            }
        }
    }

    /// Like [`SelectorState::accumulate_extract`] but writing into a
    /// caller-supplied (typically pooled) vector. Bitwise identical to
    /// the allocating form; for [`Selector::Exact`] and
    /// [`Selector::ThresholdEstimate`] the whole path is allocation-free
    /// in steady state — the Ok-Topk contribution path relies on this.
    pub fn accumulate_extract_into(
        &mut self,
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
        out: &mut SparseVec,
    ) {
        match self.selector {
            Selector::ThresholdEstimate { sample } => {
                residual.accumulate_extract_threshold_into(grad, k, sample, &mut self.rng, out);
            }
            Selector::Exact => {
                residual.accumulate(grad);
                residual.extract_topk_into(k, out);
            }
            Selector::Sampled { sample } => {
                residual.accumulate(grad);
                *out = residual.extract_topk_sampled(k, sample, &mut self.rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_sampled_return_k_entries() {
        let grad: Vec<f32> = (0..512).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();
        for selector in [Selector::Exact, Selector::Sampled { sample: 64 }] {
            let mut residual = Residual::new(512);
            residual.accumulate(&grad);
            let mut state = SelectorState::new(selector, 0);
            let sv = state.extract(&mut residual, 16);
            assert_eq!(sv.nnz(), 16, "{selector:?}");
            // extracted coordinates zeroed
            for &i in sv.indices() {
                assert_eq!(residual.dense()[i as usize], 0.0);
            }
        }
    }

    #[test]
    fn sampled_selection_overlaps_exact_heavily() {
        // Heavy-hitter structure: both kernels must find the spikes.
        let mut grad = vec![0.01f32; 1000];
        for i in (0..1000).step_by(100) {
            grad[i] = 10.0 + i as f32;
        }
        let mut r1 = Residual::new(1000);
        r1.accumulate(&grad);
        let mut r2 = r1.clone();
        let exact = SelectorState::new(Selector::Exact, 0).extract(&mut r1, 10);
        let sampled = SelectorState::new(Selector::Sampled { sample: 128 }, 0).extract(&mut r2, 10);
        let overlap = sampled
            .indices()
            .iter()
            .filter(|i| exact.contains(**i))
            .count();
        assert!(overlap >= 9, "overlap {overlap}/10");
    }

    #[test]
    fn different_ranks_use_different_streams() {
        let grad: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin()).collect();
        let extract = |rank: usize| {
            let mut r = Residual::new(256);
            r.accumulate(&grad);
            SelectorState::new(Selector::Sampled { sample: 8 }, rank).extract(&mut r, 32)
        };
        // Streams differ, results may differ (tiny sample), but both are
        // valid selections of 32 entries.
        let a = extract(0);
        let b = extract(1);
        assert_eq!(a.nnz(), 32);
        assert_eq!(b.nnz(), 32);
    }

    #[test]
    fn accumulate_extract_matches_accumulate_then_extract() {
        // Every selector: the one-call form must reproduce the two-call
        // form bitwise — for ThresholdEstimate that exercises the fused
        // single-pass kernel against the three-pass sequence.
        let grads: Vec<Vec<f32>> = (0..3)
            .map(|s: usize| {
                (0..512)
                    .map(|i| ((i * 37 + s * 11) % 101) as f32 - 50.0)
                    .collect()
            })
            .collect();
        for selector in [
            Selector::Exact,
            Selector::Sampled { sample: 64 },
            Selector::ThresholdEstimate { sample: 64 },
        ] {
            let mut r1 = Residual::new(512);
            let mut r2 = Residual::new(512);
            let mut s1 = SelectorState::new(selector, 2);
            let mut s2 = SelectorState::new(selector, 2);
            for g in &grads {
                let fused = s1.accumulate_extract(&mut r1, g, 16);
                r2.accumulate(g);
                let unfused = s2.extract(&mut r2, 16);
                assert_eq!(fused, unfused, "{selector:?}");
                assert_eq!(r1.dense(), r2.dense(), "{selector:?} residual state");
            }
        }
    }

    #[test]
    fn default_is_exact() {
        assert_eq!(Selector::default(), Selector::Exact);
    }

    #[test]
    fn threshold_estimate_is_bitwise_identical_to_exact() {
        // Unlike `Sampled`, the threshold-estimate kernel guarantees the
        // exact result for every rank's rng stream and any k.
        let grad: Vec<f32> = (0..2048)
            .map(|i| ((i * 37) % 101) as f32 - 50.0 + (i as f32 * 0.11).sin())
            .collect();
        for rank in [0usize, 1, 7] {
            for k in [1usize, 16, 333] {
                let mut r1 = Residual::new(grad.len());
                r1.accumulate(&grad);
                let mut r2 = r1.clone();
                let exact = SelectorState::new(Selector::Exact, rank).extract(&mut r1, k);
                let est = SelectorState::new(Selector::ThresholdEstimate { sample: 64 }, rank)
                    .extract(&mut r2, k);
                assert_eq!(est, exact, "rank={rank} k={k}");
                assert_eq!(r1.dense(), r2.dense(), "residual state must match");
            }
        }
    }
}
