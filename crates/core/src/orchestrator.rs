//! Multi-job cluster orchestrator — the "heavy traffic from many
//! users" scenario of the roadmap.
//!
//! An [`Orchestrator`] owns a FIFO queue of training jobs and a shared
//! simulated cluster with an admission cap of `max_concurrent` jobs.
//! Jobs are admitted in **waves**: up to `max_concurrent` jobs leave
//! the queue together, run to completion concurrently, and only then is
//! the next wave admitted (a batch scheduler, not a preemptive one —
//! the deterministic choice).
//!
//! **Fair-share link scheduling.** Co-resident jobs contend for the
//! same physical links, so each job in a wave of `n` runs under a cost
//! model with its bandwidth term scaled `β → n·β` — an equal 1/n slice
//! of every link, the α-β analogue of per-flow fair queueing (latency
//! α is a propagation property and is not shared). This keeps the
//! schedule *deterministic*: a job in a wave of `n` is bit-identical to
//! the same job run alone on an `n`-times-slower network, which is
//! exactly what the orchestrator tests pin.
//!
//! The per-job [`TrainReport`]s, a submission-ordered [`JobEvent`]
//! stream, and the makespan (sum over waves of the slowest member's
//! simulated time — waves share the cluster's wall) are aggregated into
//! an [`OrchestratorReport`].

use crate::{train_distributed, TrainConfig, TrainReport};
use gtopk_comm::CostModel;
use gtopk_data::Dataset;
use gtopk_nn::Model;
use std::collections::VecDeque;
use std::sync::Arc;

/// One queued training job: a name for the metrics stream, its own
/// [`TrainConfig`], a model builder, and its dataset.
pub struct JobSpec<M: Model> {
    /// Job name, carried through records and events.
    pub name: String,
    /// Per-job training configuration (workers, algorithm, PS mode,
    /// schedules — fully independent between jobs).
    pub cfg: TrainConfig,
    build: Box<dyn Fn() -> M + Send + Sync>,
    data: Arc<dyn Dataset>,
}

impl<M: Model> JobSpec<M> {
    /// A new job over `data` with per-rank replicas built by `build`.
    pub fn new(
        name: impl Into<String>,
        cfg: TrainConfig,
        build: impl Fn() -> M + Send + Sync + 'static,
        data: Arc<dyn Dataset>,
    ) -> Self {
        JobSpec {
            name: name.into(),
            cfg,
            build: Box::new(build),
            data,
        }
    }
}

/// Completed-job record: where it ran and what it reported.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job name from the [`JobSpec`].
    pub name: String,
    /// Wave index the job ran in (0-based admission order).
    pub wave: usize,
    /// Number of co-resident jobs in that wave (its fair share was
    /// `1/share` of every link).
    pub share: usize,
    /// Per-worker batch size, for throughput aggregation.
    pub batch_per_worker: usize,
    /// The job's full training report.
    pub report: TrainReport,
}

/// Submission-ordered job lifecycle stream. Within a wave, `Started`
/// events are emitted in admission order and `Finished` events in the
/// same order once the wave completes — a deterministic normalization
/// of the concurrent completions.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job left the queue and began training.
    Started {
        /// Job name.
        job: String,
        /// Wave it was admitted into.
        wave: usize,
        /// Co-resident job count (link share denominator).
        share: usize,
    },
    /// The job completed every epoch.
    Finished {
        /// Job name.
        job: String,
        /// Wave it ran in.
        wave: usize,
        /// Final mean training loss.
        final_loss: f64,
        /// The job's simulated time under its fair link share.
        sim_time_ms: f64,
    },
}

/// Aggregated outcome of an orchestrator run.
#[derive(Debug, Clone)]
pub struct OrchestratorReport {
    /// One record per submitted job, in submission order.
    pub jobs: Vec<JobRecord>,
    /// The lifecycle event stream.
    pub events: Vec<JobEvent>,
    /// Sum over waves of the slowest member's simulated time — the
    /// shared cluster is busy until its last job finishes.
    pub makespan_ms: f64,
}

impl OrchestratorReport {
    /// Cluster-level throughput: total training samples processed by
    /// all jobs, divided by the makespan.
    pub fn aggregate_samples_per_sec(&self) -> f64 {
        if self.makespan_ms <= 0.0 {
            return 0.0;
        }
        let samples: f64 = self
            .jobs
            .iter()
            .map(|j| {
                j.report.timing.iterations as f64
                    * j.batch_per_worker as f64
                    * j.report.workers as f64
            })
            .sum();
        samples / (self.makespan_ms / 1000.0)
    }

    /// The record for `name`, if that job was submitted.
    pub fn job(&self, name: &str) -> Option<&JobRecord> {
        self.jobs.iter().find(|j| j.name == name)
    }
}

/// FIFO multi-job scheduler over a shared simulated cluster (module
/// docs for the wave and fair-share semantics).
pub struct Orchestrator<M: Model> {
    queue: VecDeque<JobSpec<M>>,
    max_concurrent: usize,
}

impl<M: Model> Orchestrator<M> {
    /// An empty orchestrator admitting up to `max_concurrent` jobs per
    /// wave.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent == 0`.
    pub fn new(max_concurrent: usize) -> Self {
        assert!(max_concurrent > 0, "need capacity for at least one job");
        Orchestrator {
            queue: VecDeque::new(),
            max_concurrent,
        }
    }

    /// Enqueues a job (FIFO admission).
    pub fn submit(&mut self, job: JobSpec<M>) -> &mut Self {
        self.queue.push_back(job);
        self
    }

    /// Number of jobs still queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Runs every queued job to completion, wave by wave.
    ///
    /// # Panics
    ///
    /// Panics if any job's training run panics (invalid configuration,
    /// replica divergence — the same contract as
    /// [`train_distributed`]).
    pub fn run(mut self) -> OrchestratorReport {
        let mut jobs = Vec::new();
        let mut events = Vec::new();
        let mut makespan_ms = 0.0f64;
        let mut wave = 0usize;
        while !self.queue.is_empty() {
            let n = self.max_concurrent.min(self.queue.len());
            let admitted: Vec<JobSpec<M>> = self.queue.drain(..n).collect();
            for j in &admitted {
                events.push(JobEvent::Started {
                    job: j.name.clone(),
                    wave,
                    share: n,
                });
            }
            let reports: Vec<(JobSpec<M>, TrainReport)> = std::thread::scope(|scope| {
                let handles: Vec<_> = admitted
                    .into_iter()
                    .map(|job| {
                        scope.spawn(move || {
                            let mut cfg = job.cfg.clone();
                            // Fair share of every link: β scales with the
                            // number of co-resident jobs, α does not.
                            cfg.cost_model = CostModel::new(
                                cfg.cost_model.alpha_ms,
                                cfg.cost_model.beta_ms_per_elem * n as f64,
                            );
                            let report =
                                train_distributed(&cfg, &job.build, job.data.as_ref(), None);
                            (job, report)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("job thread must not panic"))
                    .collect()
            });
            let wave_ms = reports
                .iter()
                .map(|(_, r)| r.sim_time_ms)
                .fold(0.0f64, f64::max);
            makespan_ms += wave_ms;
            for (job, report) in reports {
                events.push(JobEvent::Finished {
                    job: job.name.clone(),
                    wave,
                    final_loss: report.final_loss(),
                    sim_time_ms: report.sim_time_ms,
                });
                jobs.push(JobRecord {
                    name: job.name,
                    wave,
                    share: n,
                    batch_per_worker: job.cfg.batch_per_worker,
                    report,
                });
            }
            wave += 1;
        }
        OrchestratorReport {
            jobs,
            events,
            makespan_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, PsConfig};
    use gtopk_data::GaussianMixture;
    use gtopk_nn::models;

    fn cfg(workers: usize, seed: u64) -> TrainConfig {
        let mut c = TrainConfig::convergence(workers, 8, 2, 0.2, 0.05);
        c.data_seed = seed;
        c
    }

    fn data(seed: u64) -> Arc<dyn Dataset> {
        Arc::new(GaussianMixture::new(seed, 256, 8, 4, 2.0, 0.4))
    }

    fn job(name: &str, workers: usize, seed: u64) -> JobSpec<gtopk_nn::Sequential> {
        JobSpec::new(
            name,
            cfg(workers, seed),
            || models::mlp(7, 8, 16, 4),
            data(3),
        )
    }

    #[test]
    fn wave_member_is_bitwise_identical_to_solo_run_on_scaled_network() {
        // Two co-resident jobs each get β×2; the fair-share contract
        // says each must reproduce a solo run on the ×2-β network
        // bit-for-bit (losses and simulated time alike).
        let mut orch = Orchestrator::new(2);
        orch.submit(job("a", 4, 11)).submit(job("b", 4, 12));
        let out = orch.run();
        assert_eq!(out.jobs.len(), 2);
        for (name, seed) in [("a", 11u64), ("b", 12)] {
            let mut solo = cfg(4, seed);
            solo.cost_model = CostModel::new(
                solo.cost_model.alpha_ms,
                solo.cost_model.beta_ms_per_elem * 2.0,
            );
            let reference =
                train_distributed(&solo, || models::mlp(7, 8, 16, 4), data(3).as_ref(), None);
            let got = &out.job(name).unwrap().report;
            assert_eq!(got.sim_time_ms.to_bits(), reference.sim_time_ms.to_bits());
            for (a, b) in got.epochs.iter().zip(&reference.epochs) {
                assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "{name}");
            }
        }
    }

    #[test]
    fn capacity_one_serializes_and_makespan_adds_up() {
        let mut orch = Orchestrator::new(1);
        orch.submit(job("first", 2, 1)).submit(job("second", 2, 2));
        let out = orch.run();
        assert_eq!(out.jobs[0].wave, 0);
        assert_eq!(out.jobs[1].wave, 1);
        assert_eq!(out.jobs[0].share, 1);
        assert_eq!(out.jobs[1].share, 1);
        let sum = out.jobs[0].report.sim_time_ms + out.jobs[1].report.sim_time_ms;
        assert!((out.makespan_ms - sum).abs() < 1e-9);
    }

    #[test]
    fn events_are_submission_ordered_within_waves() {
        let mut orch = Orchestrator::new(2);
        orch.submit(job("a", 2, 1))
            .submit(job("b", 2, 2))
            .submit(job("c", 2, 3));
        let out = orch.run();
        let names: Vec<(bool, String)> = out
            .events
            .iter()
            .map(|e| match e {
                JobEvent::Started { job, .. } => (true, job.clone()),
                JobEvent::Finished { job, .. } => (false, job.clone()),
            })
            .collect();
        let expect = [
            (true, "a"),
            (true, "b"),
            (false, "a"),
            (false, "b"),
            (true, "c"),
            (false, "c"),
        ];
        assert_eq!(
            names,
            expect
                .iter()
                .map(|(s, n)| (*s, n.to_string()))
                .collect::<Vec<_>>()
        );
        // c ran alone in wave 1 with a full link share.
        assert_eq!(out.job("c").unwrap().share, 1);
    }

    #[test]
    fn mixed_allreduce_and_ps_jobs_share_the_cluster_and_converge() {
        let mut orch = Orchestrator::new(2);
        let mut ps_cfg = cfg(4, 21);
        ps_cfg = ps_cfg.with_ps(PsConfig::bulk_sync(2));
        orch.submit(job("allreduce", 4, 20)).submit(JobSpec::new(
            "ps",
            ps_cfg,
            || models::mlp(7, 8, 16, 4),
            data(3),
        ));
        let out = orch.run();
        assert!(out.aggregate_samples_per_sec() > 0.0);
        for j in &out.jobs {
            assert_eq!(j.report.algorithm, Algorithm::GTopK.name());
            assert!(
                j.report.final_loss() < j.report.epochs[0].train_loss,
                "{} did not converge",
                j.name
            );
        }
    }
}
