//! Distributed S-SGD training loops (paper Algorithms 1, 2 and 4, plus
//! the dense baseline) over the simulated cluster.
//!
//! There is exactly **one** training loop ([`run_rank`]) and one
//! per-iteration executor ([`StepEngine`]). Execution *mode* (serial
//! whole-vector aggregation vs. the bucketed overlap schedule) and
//! *recovery policy* (fault-tolerant checkpoint/rollback vs. fail-fast)
//! are orthogonal switches on the same loop, so `--overlap` composes
//! with crash recovery instead of selecting a different code path.

use crate::ckpt::{self, CheckpointStore, DurableCheckpoint, SelectorDump};
use crate::overlap::{OverlapConfig, OverlapEngine, OverlapSnapshot, OverlapStats};
use crate::ps::{PsConfig, PsEngine, PsVariant};
use crate::{
    ft, Algorithm, DensitySchedule, EpochRecord, GradientAggregator, LrSchedule, Selector,
    TimingBreakdown, TrainReport, Update,
};
use gtopk_comm::{Cluster, Communicator, CostModel, FaultPlan, Message, Payload, Result, Topology};
use gtopk_data::{shard_indices, BatchIter, Dataset};
use gtopk_nn::{accuracy, softmax_cross_entropy, Model, MomentumSgd};
use gtopk_sparse::Residual;
use std::collections::VecDeque;

/// Simulated per-iteration local costs, used by the timing experiments
/// (Figs. 10–11, Table IV). When present, each iteration advances the
/// simulated clock by `compute_ms` (the GPU's forward+backward, which we
/// cannot measure without the paper's hardware) and `sparsify_ms` (top-k
/// selection). Communication time always comes from the simulated α-β
/// network. `None` leaves the clock driven by communication alone —
/// appropriate for pure convergence experiments.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComputeCost {
    /// Forward + backward time per iteration, ms.
    pub compute_ms: f64,
    /// Sparsification time per iteration, ms (charged for sparse
    /// algorithms only).
    pub sparsify_ms: f64,
}

/// Configuration of a distributed training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of simulated workers `P`.
    pub workers: usize,
    /// Per-worker mini-batch size `b` (global batch is `b·P`).
    pub batch_per_worker: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Gradient aggregation algorithm.
    pub algorithm: Algorithm,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Momentum coefficient (the paper uses 0.9 everywhere).
    pub momentum: f32,
    /// Gradient density schedule ρ(epoch).
    pub density: DensitySchedule,
    /// Network cost model for the simulated cluster.
    pub cost_model: CostModel,
    /// Optional modeled local compute costs (see [`ComputeCost`]).
    pub compute_cost: Option<ComputeCost>,
    /// Local top-k selection kernel (exact or sampled-threshold).
    pub selector: Selector,
    /// Collective plan topology for the plan-driven (gTop-k tree)
    /// algorithms. Must stay [`Topology::Binomial`] for the
    /// fixed-schedule algorithms (see [`Algorithm::supports_topology`]).
    pub topology: Topology,
    /// DGC-style momentum correction (Lin et al., cited in §VI): apply
    /// momentum *locally before* residual accumulation, so delayed
    /// coordinates carry their momentum history when finally selected;
    /// the global update is then applied with plain SGD.
    pub momentum_correction: bool,
    /// Gradient clipping: rescale each worker's local gradient to this
    /// maximum L2 norm before residual accumulation (the DGC trick the
    /// paper cites for protecting accuracy under sparsification).
    pub clip_norm: Option<f32>,
    /// Seed for batch shuffling (model seeds belong to the builder).
    pub data_seed: u64,
    /// Deterministic fault injection for the run. `None` (the default)
    /// and [`FaultPlan::none`] leave training bit-identical to a build
    /// without fault machinery; an active plan arms the fault-tolerant
    /// recovery policy (gTop-k variants only): periodic in-memory
    /// checkpoints, rollback on membership change, and
    /// shrink-and-continue over the surviving ranks.
    pub fault_plan: Option<FaultPlan>,
    /// Iterations between in-memory checkpoints in the fault-tolerant
    /// loop (ignored in fault-free runs).
    pub checkpoint_interval: usize,
    /// Executed compute/communication overlap (gTop-k only). `None`
    /// (the default) keeps the serial per-iteration schedule and leaves
    /// training output bit-identical to a build without the overlap
    /// engine; `Some` partitions the gradient into buckets and pipelines
    /// each bucket's gTopKAllReduce behind the remaining backward
    /// compute (see [`crate::overlap`]). Composes with fault injection,
    /// crash recovery included.
    pub overlap: Option<OverlapConfig>,
    /// Durable checkpoint directory for elastic recovery. `None` (the
    /// default) writes nothing — and adds **exactly zero** simulated
    /// time, since durable I/O is charged to the wall clock only, never
    /// the α-β clock. `Some` makes every checkpoint boundary also write
    /// a CRC-protected per-rank file under the directory (see
    /// [`crate::ckpt`]): a killed process restarted on the same
    /// directory restores from disk and — with the fault-tolerant
    /// policy armed — rejoins the membership via the join protocol in
    /// [`crate::ft`].
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Sharded parameter-server execution mode (see [`crate::ps`]).
    /// `None` (the default) runs the configured allreduce family;
    /// `Some` replaces the collective with per-shard push/pull rounds —
    /// bulk-synchronous or wait-free with a bounded staleness — while
    /// keeping the same error-feedback, checkpoint and recovery
    /// machinery. Requires [`Algorithm::GTopK`], [`Selector::Exact`],
    /// the default binomial topology, and no overlap engine.
    pub ps: Option<PsConfig>,
}

impl TrainConfig {
    /// A small-scale convergence-experiment configuration matching the
    /// paper's defaults: momentum 0.9, the paper's warmup (reduced
    /// density *and* reduced learning rate over the first four epochs,
    /// §IV-B), 1 GbE network, no modeled compute.
    pub fn convergence(workers: usize, batch: usize, epochs: usize, lr: f32, density: f64) -> Self {
        TrainConfig {
            workers,
            batch_per_worker: batch,
            epochs,
            algorithm: Algorithm::GTopK,
            lr: LrSchedule::new(lr, 4, Vec::new()),
            momentum: 0.9,
            density: DensitySchedule::paper_warmup(density),
            cost_model: CostModel::gigabit_ethernet(),
            compute_cost: None,
            selector: Selector::Exact,
            topology: Topology::Binomial,
            momentum_correction: false,
            clip_norm: None,
            data_seed: 0x5eed,
            fault_plan: None,
            checkpoint_interval: 10,
            overlap: None,
            checkpoint_dir: None,
            ps: None,
        }
    }

    /// Returns a copy with durable checkpoints written under `dir` (see
    /// [`TrainConfig::checkpoint_dir`]).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Returns a copy with a different algorithm (for baseline sweeps).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns a copy with a fault plan installed (arming the
    /// fault-tolerant recovery policy when the plan is active).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Whether this configuration arms the fault-tolerant recovery
    /// policy.
    pub fn fault_tolerant(&self) -> bool {
        self.fault_plan.as_ref().is_some_and(|p| p.is_active())
    }

    /// Returns a copy with the executed overlap engine enabled (the
    /// engine inherits this configuration's collective topology).
    pub fn with_overlap(mut self, overlap: OverlapConfig) -> Self {
        self.overlap = Some(overlap.with_topology(self.topology));
        self
    }

    /// Returns a copy running the sharded parameter-server execution
    /// mode instead of an allreduce collective.
    pub fn with_ps(mut self, ps: PsConfig) -> Self {
        self.ps = Some(ps);
        self
    }

    /// Returns a copy with a different collective plan topology, kept in
    /// sync with the overlap engine's if one is configured.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self.overlap = self.overlap.map(|ov| ov.with_topology(topology));
        self
    }
}

/// The one per-iteration executor every training mode runs through: it
/// owns the aggregation state (whole-vector residual + aggregator in
/// serial mode, the bucketed [`OverlapEngine`] in overlap mode),
/// performs one aggregation over the current membership, applies the
/// averaged update, and can snapshot/restore its state for the
/// fault-tolerant checkpoint machinery.
struct StepEngine {
    mode: Mode,
}

enum Mode {
    Serial {
        aggregator: Box<dyn GradientAggregator>,
        residual: Residual,
    },
    Overlap(Box<OverlapEngine>),
    Ps(Box<PsEngine>),
}

/// Aggregation state captured at a checkpoint boundary — the engine-mode
/// half of [`Checkpoint`].
enum EngineSnapshot {
    /// Dense copy of the whole-vector residual. Selector state is
    /// deliberately *not* snapshotted: it models a local kernel's
    /// adaptive threshold, which survives a rollback like any other
    /// measurement of executed work.
    Serial(Vec<f32>),
    /// Per-bucket residuals and selector states (see
    /// [`OverlapEngine::snapshot`]).
    Overlap(OverlapSnapshot),
    /// Dense copy of the PS worker's residual. Checkpoints are taken at
    /// round boundaries with an empty pull pipeline (bulk-sync — the
    /// only PS variant composing with checkpoints), so the residual is
    /// the engine's entire state.
    Ps(Vec<f32>),
}

impl StepEngine {
    fn new(cfg: &TrainConfig, segments: &[usize], rank: usize) -> Self {
        let mode = if let Some(ps) = &cfg.ps {
            Mode::Ps(Box::new(PsEngine::new(*ps, segments.iter().sum())))
        } else {
            match &cfg.overlap {
                Some(ov) => Mode::Overlap(Box::new(OverlapEngine::with_algorithm(
                    ov,
                    segments,
                    cfg.compute_cost,
                    cfg.selector,
                    rank,
                    cfg.cost_model,
                    cfg.algorithm,
                ))),
                None => Mode::Serial {
                    aggregator: cfg
                        .algorithm
                        .aggregator_with_topology(cfg.selector, cfg.topology),
                    residual: Residual::new(segments.iter().sum()),
                },
            }
        };
        StepEngine { mode }
    }

    fn overlap_engine(&self) -> Option<&OverlapEngine> {
        match &self.mode {
            Mode::Overlap(engine) => Some(engine),
            Mode::Serial { .. } | Mode::Ps(_) => None,
        }
    }

    /// Applies any rounds still deferred in the wait-free PS pipeline
    /// (a no-op for every other mode), returning the applied non-zero
    /// count.
    fn finish(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        opt: &mut MomentumSgd,
        model: &mut dyn Model,
    ) -> Result<u64> {
        match &mut self.mode {
            Mode::Ps(engine) => engine.drain(comm, members, opt, model),
            Mode::Serial { .. } | Mode::Overlap(_) => Ok(0),
        }
    }

    /// One aggregation step over `members`: accumulate `src` into the
    /// error-feedback state, aggregate (`k` for the whole vector in
    /// serial mode; `rho` re-derives per-bucket budgets in overlap
    /// mode), apply the averaged update, and return the non-zero count
    /// applied.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        src: &[f32],
        rho: f64,
        k: usize,
        opt: &mut MomentumSgd,
        model: &mut dyn Model,
    ) -> Result<u64> {
        match &mut self.mode {
            Mode::Serial {
                aggregator,
                residual,
            } => {
                // The aggregator folds `src` into the residual itself —
                // fused with selection into one memory pass where the
                // configured selector allows.
                let update = aggregator.aggregate(comm, members, residual, src, k)?;
                let nnz = update.nnz() as u64;
                match &update {
                    Update::Dense(v) => opt.step_dense(model, v),
                    Update::Sparse(sv) => opt.step_sparse(model, sv),
                }
                Ok(nnz)
            }
            Mode::Overlap(engine) => engine.step(comm, members, src, rho, opt, model),
            Mode::Ps(engine) => engine.step(comm, members, src, k, opt, model),
        }
    }

    fn snapshot(&self) -> EngineSnapshot {
        match &self.mode {
            Mode::Serial { residual, .. } => EngineSnapshot::Serial(residual.dense().to_vec()),
            Mode::Overlap(engine) => EngineSnapshot::Overlap(engine.snapshot()),
            Mode::Ps(engine) => EngineSnapshot::Ps(engine.residual_dense().to_vec()),
        }
    }

    fn restore(&mut self, snap: &EngineSnapshot) {
        match (&mut self.mode, snap) {
            (Mode::Serial { residual, .. }, EngineSnapshot::Serial(saved)) => {
                residual.clear();
                residual.accumulate(saved);
            }
            (Mode::Overlap(engine), EngineSnapshot::Overlap(saved)) => engine.restore(saved),
            (Mode::Ps(engine), EngineSnapshot::Ps(saved)) => engine.restore_residual(saved),
            _ => unreachable!("snapshot mode matches the engine that took it"),
        }
    }

    /// Durable (process-granularity) engine state: residuals *plus*
    /// selector state. The latter is deliberately absent from the
    /// in-memory [`EngineSnapshot`] — a same-process rollback keeps the
    /// kernel's RNG naturally — but a process restart must persist it to
    /// replay the sampled kernels' draws bit-exactly.
    fn durable_state(&self) -> ckpt::EngineState {
        match &self.mode {
            Mode::Serial {
                aggregator,
                residual,
            } => ckpt::EngineState::Serial {
                residual: residual.dense().to_vec(),
                selector: aggregator.selector_state().map(SelectorDump::capture),
            },
            Mode::Overlap(engine) => {
                let snap = engine.snapshot();
                ckpt::EngineState::Overlap {
                    residuals: snap.residuals().to_vec(),
                    selectors: snap.selectors().iter().map(SelectorDump::capture).collect(),
                }
            }
            // PS regional selection is exact (no selector RNG), so the
            // residual is the whole durable state.
            Mode::Ps(engine) => ckpt::EngineState::Ps {
                residual: engine.residual_dense().to_vec(),
            },
        }
    }

    fn restore_durable(&mut self, state: &ckpt::EngineState) {
        match (&mut self.mode, state) {
            (
                Mode::Serial {
                    aggregator,
                    residual,
                },
                ckpt::EngineState::Serial {
                    residual: saved,
                    selector,
                },
            ) => {
                residual.clear();
                residual.accumulate(saved);
                if let Some(sel) = selector {
                    aggregator.restore_selector_state(sel.revive());
                }
            }
            (
                Mode::Overlap(engine),
                ckpt::EngineState::Overlap {
                    residuals,
                    selectors,
                },
            ) => {
                let snap = OverlapSnapshot::from_parts(
                    residuals.clone(),
                    selectors.iter().map(SelectorDump::revive).collect(),
                );
                engine.restore(&snap);
            }
            (Mode::Ps(engine), ckpt::EngineState::Ps { residual }) => {
                engine.restore_residual(residual);
            }
            _ => unreachable!("durable state mode matches the engine that took it"),
        }
    }
}

struct RankOutcome {
    losses: Vec<f64>,
    evals: Vec<Option<f64>>,
    timing: TimingBreakdown,
    sim_time_ms: f64,
    elems_sent: usize,
    retransmissions: usize,
    link_stats: Vec<gtopk_comm::LinkStats>,
    update_nnz_sum: u64,
    param_checksum: f64,
    pool_hits: u64,
    pool_misses: u64,
    overlap: Option<OverlapStats>,
    /// Ranks in this rank's final membership view (equals the initial
    /// worker count unless shrink-and-continue recoveries removed some).
    survivors: usize,
    /// True when this rank left the run: a scheduled crash, or expulsion
    /// after failing to reach any recovery coordinator.
    crashed: bool,
}

/// Runs distributed S-SGD with the configured aggregation algorithm.
///
/// `build_model` is invoked once per rank and must produce bit-identical
/// replicas (seed it deterministically); `train_data` is sharded by rank;
/// `eval_data`, when given, is evaluated on rank 0 at the end of every
/// epoch (replicas stay identical across ranks, so one rank suffices —
/// this is asserted at the end of the run).
///
/// # Panics
///
/// Panics if the configuration is inconsistent with the dataset (e.g. a
/// shard smaller than one batch), if model replicas diverge, or if a
/// communication error occurs (worker threads treat transport failures
/// as fatal, like an MPI abort).
pub fn train_distributed<M, F>(
    cfg: &TrainConfig,
    build_model: F,
    train_data: &dyn Dataset,
    eval_data: Option<&dyn Dataset>,
) -> TrainReport
where
    M: Model,
    F: Fn() -> M + Send + Sync,
{
    let iters_per_epoch = validate(cfg, train_data);

    let mut cluster = Cluster::new(cfg.workers, cfg.cost_model);
    if let Some(plan) = &cfg.fault_plan {
        cluster = cluster.with_fault_plan(plan.clone());
    }
    let outcomes: Vec<RankOutcome> = cluster.run(|comm| {
        run_rank(
            cfg,
            comm,
            &build_model,
            train_data,
            eval_data,
            iters_per_epoch,
        )
    });

    // Ranks that crashed (or were expelled) leave partial outcomes; all
    // reporting is over the survivors. Fault-free runs have no crashes,
    // so this is the identity filter there.
    let survivors: Vec<&RankOutcome> = outcomes.iter().filter(|o| !o.crashed).collect();
    assert!(
        !survivors.is_empty(),
        "every rank crashed or was expelled; nothing to report"
    );
    for s in &survivors {
        assert_eq!(
            s.losses.len(),
            cfg.epochs,
            "surviving ranks must complete every epoch"
        );
    }

    // Replica-consistency invariant: identical updates on every
    // surviving rank.
    let checksum0 = survivors[0].param_checksum;
    for (r, o) in outcomes.iter().enumerate() {
        if o.crashed {
            continue;
        }
        assert!(
            (o.param_checksum - checksum0).abs() <= 1e-3 * checksum0.abs().max(1.0),
            "rank {r} model diverged: {} vs {}",
            o.param_checksum,
            checksum0
        );
    }

    let epochs = (0..cfg.epochs)
        .map(|e| {
            let mean_loss =
                survivors.iter().map(|o| o.losses[e]).sum::<f64>() / survivors.len() as f64;
            EpochRecord {
                epoch: e,
                train_loss: mean_loss,
                eval_accuracy: survivors[0].evals[e],
                density: cfg.density.density(e),
            }
        })
        .collect();

    let reporter = survivors[0];
    let iterations = reporter.timing.iterations.max(1);
    TrainReport {
        algorithm: cfg.algorithm.name(),
        workers: cfg.workers,
        epochs,
        timing: reporter.timing,
        sim_time_ms: reporter.sim_time_ms,
        elems_sent_rank0: reporter.elems_sent,
        retransmissions: reporter.retransmissions,
        link_stats: reporter.link_stats.clone(),
        survivors: survivors.len(),
        mean_update_nnz: reporter.update_nnz_sum as f64 / iterations as f64,
        pool_hits_rank0: reporter.pool_hits,
        pool_misses_rank0: reporter.pool_misses,
        overlap: reporter.overlap.clone(),
    }
}

/// Runs the per-rank training loop on an externally constructed
/// communicator — the entry point for *real* multi-process launches,
/// where each OS process owns one rank over a
/// [`TcpTransport`](gtopk_comm::transport::TcpTransport) and there is no
/// in-process [`Cluster`] to orchestrate.
///
/// The communicator's size must match `cfg.workers`. `cfg.fault_plan`
/// (if any) is armed on the endpoint here; arming an empty active plan
/// ([`FaultPlan::seeded`] with no faults layered on) is how a real
/// deployment turns on the checkpoint/rollback recovery policy without
/// injecting any synthetic faults — organic peer death then surfaces
/// through the transport's own deadlines and heartbeats and takes the
/// same ULFM-style recovery path as a simulated crash.
///
/// Returns this rank's view of the run, or `None` if the rank crashed or
/// was expelled from the membership (its partial results are meaningless
/// — on a real cluster the process would have died).
///
/// # Panics
///
/// As for [`train_distributed`], plus if `comm.size() != cfg.workers`.
pub fn train_rank<M, F>(
    cfg: &TrainConfig,
    comm: &mut Communicator,
    build_model: F,
    train_data: &dyn Dataset,
    eval_data: Option<&dyn Dataset>,
) -> Option<TrainReport>
where
    M: Model,
    F: Fn() -> M,
{
    assert_eq!(
        comm.size(),
        cfg.workers,
        "communicator size must match cfg.workers"
    );
    let iters_per_epoch = validate(cfg, train_data);
    if let Some(plan) = &cfg.fault_plan {
        comm.arm_fault_plan(plan.clone());
    }
    let outcome = run_rank(
        cfg,
        comm,
        &build_model,
        train_data,
        eval_data,
        iters_per_epoch,
    );
    if outcome.crashed {
        return None;
    }
    assert_eq!(
        outcome.losses.len(),
        cfg.epochs,
        "a surviving rank must complete every epoch"
    );
    let epochs = (0..cfg.epochs)
        .map(|e| EpochRecord {
            epoch: e,
            train_loss: outcome.losses[e],
            eval_accuracy: outcome.evals[e],
            density: cfg.density.density(e),
        })
        .collect();
    let iterations = outcome.timing.iterations.max(1);
    Some(TrainReport {
        algorithm: cfg.algorithm.name(),
        workers: cfg.workers,
        epochs,
        timing: outcome.timing,
        sim_time_ms: outcome.sim_time_ms,
        elems_sent_rank0: outcome.elems_sent,
        retransmissions: outcome.retransmissions,
        link_stats: outcome.link_stats.clone(),
        survivors: outcome.survivors,
        mean_update_nnz: outcome.update_nnz_sum as f64 / iterations as f64,
        pool_hits_rank0: outcome.pool_hits,
        pool_misses_rank0: outcome.pool_misses,
        overlap: outcome.overlap.clone(),
    })
}

/// Validates a configuration against the dataset and returns the
/// iterations per epoch (shared by [`train_distributed`] and
/// [`train_rank`]).
fn validate(cfg: &TrainConfig, train_data: &dyn Dataset) -> usize {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(cfg.epochs > 0, "need at least one epoch");
    if cfg.overlap.is_some() {
        assert!(
            matches!(
                cfg.algorithm,
                Algorithm::GTopK | Algorithm::OkTopk | Algorithm::SparDl
            ),
            "the overlap engine drives per-bucket sparse collectives \
             (gtopk, oktopk or spardl; got {})",
            cfg.algorithm.name()
        );
    }
    if let Some(ps) = &cfg.ps {
        assert!(
            cfg.algorithm == Algorithm::GTopK,
            "the parameter-server mode drives the gTop-k sparse push path \
             (got {}); run it with Algorithm::GTopK",
            cfg.algorithm.name()
        );
        assert!(
            cfg.overlap.is_none(),
            "the parameter-server mode schedules its own push/pull pipeline; \
             it cannot compose with the overlap engine"
        );
        assert!(
            cfg.selector == Selector::Exact,
            "the parameter-server mode selects exactly per shard region \
             (budgeted wire sizes); sampled/threshold selectors are not supported"
        );
        assert!(
            cfg.topology == Topology::Binomial,
            "the parameter-server mode replaces the collective entirely; \
             --topology has no effect there (leave it at the default binomial)"
        );
        assert!(
            ps.shards >= 1 && ps.shards <= cfg.workers,
            "--shards must be in [1, workers]: got {} shards for {} workers",
            ps.shards,
            cfg.workers
        );
        if let PsVariant::WaitFree { .. } = ps.variant {
            assert!(
                !cfg.fault_tolerant(),
                "wait-free PS pipelines rounds across steps and cannot roll \
                 back mid-pipeline; fault injection requires the bulk-sync variant"
            );
            assert!(
                cfg.checkpoint_dir.is_none(),
                "wait-free PS cannot compose with durable checkpoints \
                 (rounds in flight are not checkpointable); use bulk-sync"
            );
        }
    }
    let iters_per_epoch = (train_data.len() / cfg.workers) / cfg.batch_per_worker;
    assert!(
        iters_per_epoch > 0,
        "dataset too small: {} items for {} workers × batch {}",
        train_data.len(),
        cfg.workers,
        cfg.batch_per_worker
    );
    iters_per_epoch
}

/// Rank-local state captured by the fault-tolerant recovery policy at
/// checkpoint boundaries. Everything needed to replay from iteration
/// `iter` as if the iterations after it never happened (time-breakdown
/// counters are deliberately *not* part of the snapshot: they describe
/// executed work, replays included).
struct Checkpoint {
    iter: u64,
    params: Vec<f32>,
    opt: MomentumSgd,
    engine: EngineSnapshot,
    local_velocity: Option<Vec<f32>>,
    batches: BatchIter,
    losses: Vec<f64>,
    evals: Vec<Option<f64>>,
    epoch_loss: f64,
}

/// The per-rank training loop — the only one. A single global iteration
/// index drives an epoch-agnostic loop (so fault-tolerant rollback can
/// cross epoch boundaries) and every iteration funnels through
/// [`StepEngine::step`].
///
/// With an active fault plan, the loop additionally:
///
/// * snapshots its full training state in memory every
///   `checkpoint_interval` iterations (the last two snapshots are kept —
///   ranks can be at most one checkpoint boundary apart when a failure
///   hits);
/// * starts each iteration with [`Communicator::begin_step`], which is
///   where a scheduled crash fires (the rank silently exits, closing its
///   channels — exactly how peers observe a real process death);
/// * on a communication error enters [`ft::recover`], agrees on the
///   surviving membership and the common rollback point, restores that
///   checkpoint (engine state included), and continues shrunk;
/// * has every live rank evaluate at epoch ends (rank 0 may not
///   survive), and charges recovery wall-time and count to
///   [`TimingBreakdown::recovery_ms`] / `recoveries`.
fn run_rank<M, F>(
    cfg: &TrainConfig,
    comm: &mut Communicator,
    build_model: &F,
    train_data: &dyn Dataset,
    eval_data: Option<&dyn Dataset>,
    iters_per_epoch: usize,
) -> RankOutcome
where
    M: Model,
    F: Fn() -> M,
{
    let ft = cfg.fault_tolerant();
    if ft {
        assert!(
            matches!(cfg.algorithm, Algorithm::GTopK | Algorithm::GTopKFeedback),
            "fault-tolerant training supports gTop-k variants only (got {})",
            cfg.algorithm.name()
        );
    }
    let mut model = build_model();
    let m = model.num_params();
    // With momentum correction, momentum is applied locally (DGC style)
    // and the aggregated update is applied with plain SGD.
    let opt_momentum = if cfg.momentum_correction {
        0.0
    } else {
        cfg.momentum
    };
    let mut opt = MomentumSgd::new(m, cfg.lr.lr(0), opt_momentum);
    let mut local_velocity: Option<Vec<f32>> = if cfg.momentum_correction {
        Some(vec![0.0; m])
    } else {
        None
    };
    let mut engine = StepEngine::new(cfg, &model.param_segments(), comm.rank());
    let shard = shard_indices(train_data.len(), comm.rank(), comm.size());
    let mut batches = BatchIter::new(shard, cfg.batch_per_worker, cfg.data_seed);
    let mut members: Vec<usize> = (0..comm.size()).collect();
    let interval = cfg.checkpoint_interval.max(1) as u64;
    let durable: Option<CheckpointStore> = cfg.checkpoint_dir.as_ref().map(|dir| {
        CheckpointStore::new(dir, comm.rank()).expect("checkpoint directory must be writable")
    });
    // Checkpoints are taken by the fault-tolerant policy and whenever a
    // durable directory is configured (a solo run can then cold-resume).
    let take_ckpts = ft || durable.is_some();
    // Number of checkpoints pinned at the front of the deque: after a
    // shrink, everything up to the rollback anchor stays resident so a
    // later rejoin can roll the regrown membership back to it. Zero
    // outside a shrunk phase (plain keep-2 eviction).
    let mut pinned = 0usize;

    let ipe = iters_per_epoch as u64;
    let total_iters = cfg.epochs as u64 * ipe;
    let mut it = 0u64;
    let mut losses: Vec<f64> = Vec::with_capacity(cfg.epochs);
    let mut evals: Vec<Option<f64>> = Vec::with_capacity(cfg.epochs);
    let mut epoch_loss = 0.0f64;
    let mut timing = TimingBreakdown::default();
    let mut update_nnz_sum = 0u64;
    let mut ckpts: VecDeque<Checkpoint> = VecDeque::with_capacity(2);
    let mut crashed = false;

    // Durable restart: a non-empty checkpoint directory means this
    // process is a restarted incarnation of its rank. Solo it simply
    // cold-resumes from the newest intact generation; in a cluster it
    // runs the joiner side of the rejoin protocol — broadcast JOIN_REQ,
    // wait for the coordinator's WELCOME, restore the agreed generation
    // from disk, and verify the donor's state transfer bit-for-bit.
    if let Some(store) = &durable {
        if let Some((disk, _rejected)) = store.load_latest() {
            if comm.size() == 1 {
                it = disk.iter;
                apply_durable(
                    &disk,
                    &mut model,
                    &mut opt,
                    &mut engine,
                    &mut local_velocity,
                    &mut batches,
                    &mut losses,
                    &mut evals,
                    &mut epoch_loss,
                );
            } else {
                assert!(
                    ft,
                    "a multi-rank durable restart requires the fault-tolerant policy"
                );
                match request_join(comm, disk.iter) {
                    Some((new_members, rollback, coordinator, epoch)) => {
                        comm.set_epoch(epoch);
                        members = new_members;
                        let gen = store
                            .load(rollback)
                            .expect("the agreed rollback generation is retained on disk");
                        it = gen.iter;
                        apply_durable(
                            &gen,
                            &mut model,
                            &mut opt,
                            &mut engine,
                            &mut local_velocity,
                            &mut batches,
                            &mut losses,
                            &mut evals,
                            &mut epoch_loss,
                        );
                        // Donor transfer: redundant with the disk copy by
                        // construction; receiving and checking it makes
                        // the replica invariant *established*, not
                        // assumed.
                        let off = ft::epoch_tag_offset(epoch);
                        let timeout = comm.recovery_timeout_ms();
                        let xfer = comm
                            .recv_deadline(coordinator, ft::TAG_XFER + off, timeout)
                            .and_then(|p| {
                                let v = comm.recv_deadline(
                                    coordinator,
                                    ft::TAG_XFER + off + 1,
                                    timeout,
                                )?;
                                Ok((p.payload.into_dense(), v.payload.into_dense()))
                            });
                        match xfer {
                            Ok((donor_params, donor_vel)) => {
                                let bits_eq = |a: &[f32], b: &[f32]| {
                                    a.len() == b.len()
                                        && a.iter()
                                            .zip(b.iter())
                                            .all(|(x, y)| x.to_bits() == y.to_bits())
                                };
                                assert!(
                                    bits_eq(&donor_params, &gen.params),
                                    "donor params must be bit-identical to the durable checkpoint"
                                );
                                assert!(
                                    bits_eq(&donor_vel, &gen.velocity),
                                    "donor velocity must be bit-identical to the durable checkpoint"
                                );
                                model.set_flat_params(&donor_params);
                                opt.set_velocity(&donor_vel);
                                timing.recoveries += 1;
                            }
                            Err(_) => crashed = true,
                        }
                    }
                    None => crashed = true,
                }
            }
        }
    }

    while !crashed && it < total_iters {
        let epoch = (it / ipe) as usize;
        opt.set_lr(cfg.lr.lr(epoch));
        let rho = cfg.density.density(epoch);
        let k = cfg.density.k(epoch, m);

        if take_ckpts {
            // Periodic in-memory checkpoint. After a rollback `it` lands
            // on the restored snapshot's boundary; the `<` guard avoids
            // re-snapshotting the identical state.
            if it.is_multiple_of(interval) && ckpts.back().is_none_or(|c| c.iter < it) {
                ckpts.push_back(Checkpoint {
                    iter: it,
                    params: model.flat_params(),
                    opt: opt.clone(),
                    engine: engine.snapshot(),
                    local_velocity: local_velocity.clone(),
                    batches: batches.clone(),
                    losses: losses.clone(),
                    evals: evals.clone(),
                    epoch_loss,
                });
                // Keep the last two unpinned snapshots; pinned anchors
                // (front of the deque, shrunk phases only) stay.
                while ckpts.len() > pinned + 2 {
                    let _ = ckpts.remove(pinned);
                }
                if let Some(store) = &durable {
                    // Durable twin of the snapshot just taken. Wall-clock
                    // only: never touches the simulated α-β clock, so
                    // `--checkpoint-dir` costs exactly zero simulated ms.
                    let c = ckpts.back().expect("just pushed");
                    let (data_epoch, data_cursor) = c.batches.position();
                    store
                        .save(&DurableCheckpoint {
                            rank: comm.rank() as u64,
                            iter: it,
                            params: c.params.clone(),
                            velocity: c.opt.velocity().to_vec(),
                            engine: engine.durable_state(),
                            local_velocity: c.local_velocity.clone(),
                            data_epoch,
                            data_cursor: data_cursor as u64,
                            epoch_loss: c.epoch_loss,
                            losses: c.losses.clone(),
                            evals: c.evals.clone(),
                        })
                        .expect("durable checkpoint write must succeed");
                }
            }
        }
        if ft {
            // Scheduled crashes fire here: the rank just stops, and its
            // peers find out through the transport (no farewell message).
            if comm.begin_step().is_err() {
                crashed = true;
                break;
            }
            // A shrunk membership watches for rejoin requests at every
            // step boundary; seeing one triggers a growth recovery round
            // before any collective of this iteration starts.
            if members.len() < comm.size() {
                let absent: Vec<usize> =
                    (0..comm.size()).filter(|r| !members.contains(r)).collect();
                let joiners = comm.poll_join_requests(&absent);
                if !joiners.is_empty() {
                    let t_rec = comm.now_ms();
                    if !handle_recovery(
                        comm,
                        &mut members,
                        &mut ckpts,
                        &mut pinned,
                        &joiners,
                        durable.as_ref(),
                        &mut model,
                        &mut opt,
                        &mut engine,
                        &mut local_velocity,
                        &mut batches,
                        &mut losses,
                        &mut evals,
                        &mut epoch_loss,
                        &mut it,
                        &mut timing,
                        t_rec,
                    ) {
                        crashed = true;
                        break;
                    }
                    continue;
                }
            }
        }

        let idx = batches
            .next_batch()
            .expect("iters_per_epoch fits every shard")
            .to_vec();
        let (x, ys) = train_data.batch(&idx);

        let t0 = comm.now_ms();
        model.zero_grads();
        let logits = model.forward(&x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &ys);
        model.backward(&grad);
        let mut g = model.flat_grads();
        if let Some(max_norm) = cfg.clip_norm {
            clip_to_norm(&mut g, max_norm);
        }
        let src: &[f32] = match &mut local_velocity {
            Some(u) => {
                for (ui, &gi) in u.iter_mut().zip(g.iter()) {
                    *ui = cfg.momentum * *ui + gi;
                }
                u
            }
            None => &g,
        };

        // Serial mode charges the whole iteration's modeled compute (and
        // sparsification, for sparse algorithms) up front; the overlap
        // engine stages the clock per bucket itself, so only the
        // attribution shares are computed here.
        let (charged_comp, charged_compr) = if let Some(ov) = engine.overlap_engine() {
            let straggle = comm.straggle_factor();
            (
                straggle * ov.compute_ms_per_iter(),
                straggle * ov.sparsify_ms_per_iter(),
            )
        } else {
            if let Some(cost) = cfg.compute_cost {
                comm.advance_compute(cost.compute_ms);
            }
            let t1 = comm.now_ms();
            if cfg.algorithm != Algorithm::Dense {
                if let Some(cost) = cfg.compute_cost {
                    comm.advance_compute(cost.sparsify_ms);
                }
            }
            (t1 - t0, comm.now_ms() - t1)
        };
        timing.compute_ms += charged_comp;
        timing.compression_ms += charged_compr;

        let t_step = comm.now_ms();
        match engine.step(comm, &members, src, rho, k, &mut opt, &mut model) {
            Ok(nnz) => {
                update_nnz_sum += nnz;
                epoch_loss += loss as f64;
                timing.communication_ms += (comm.now_ms() - t0) - charged_comp - charged_compr;
                timing.iterations += 1;
                it += 1;
                if it.is_multiple_of(ipe) {
                    losses.push(epoch_loss / iters_per_epoch as f64);
                    // Fault-tolerant runs evaluate on every live rank
                    // (any rank may end up the reporter); otherwise only
                    // rank 0 does, replicas being identical.
                    let eval = if ft || comm.rank() == 0 {
                        eval_data.map(|ds| evaluate(&mut model, ds))
                    } else {
                        eval_data.map(|_| 0.0) // placeholder; only rank 0's is reported
                    };
                    evals.push(eval);
                    epoch_loss = 0.0;
                    batches.next_epoch();
                }
            }
            Err(err) => {
                assert!(ft, "aggregation must not fail mid-training: {err:?}");
                ft::ft_trace(|| format!("rank {} step {it} failed: {err:?}", comm.rank()));
                if !handle_recovery(
                    comm,
                    &mut members,
                    &mut ckpts,
                    &mut pinned,
                    &[],
                    durable.as_ref(),
                    &mut model,
                    &mut opt,
                    &mut engine,
                    &mut local_velocity,
                    &mut batches,
                    &mut losses,
                    &mut evals,
                    &mut epoch_loss,
                    &mut it,
                    &mut timing,
                    t_step,
                ) {
                    // Could not reach any coordinator: this rank was
                    // expelled (e.g. it timed out long enough for the
                    // others to shrink past it). It leaves the run.
                    crashed = true;
                    break;
                }
            }
        }
    }

    // Wait-free PS leaves up to `staleness_bound` rounds deferred in the
    // pipeline; apply them so no gradient mass stays stranded in flight
    // (replicas all drain identically). Every other mode is a no-op.
    if !crashed {
        update_nnz_sum += engine
            .finish(comm, &members, &mut opt, &mut model)
            .expect("draining the PS pipeline runs fault-free by construction");
    }

    let params = model.flat_params();
    let stats = comm.stats();
    RankOutcome {
        losses,
        evals,
        timing,
        sim_time_ms: comm.now_ms(),
        elems_sent: stats.elems_sent,
        retransmissions: stats.retransmissions,
        link_stats: comm.link_stats(),
        update_nnz_sum,
        param_checksum: params.iter().map(|&v| v as f64).sum(),
        pool_hits: stats.pool_hits,
        pool_misses: stats.pool_misses,
        overlap: engine.overlap_engine().map(OverlapEngine::stats),
        survivors: members.len(),
        crashed,
    }
}

/// Rescales `g` in place so its L2 norm is at most `max_norm`.
fn clip_to_norm(g: &mut [f32], max_norm: f32) {
    debug_assert!(max_norm > 0.0, "clip norm must be positive");
    let norm = g
        .iter()
        .map(|v| (*v as f64) * (*v as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        g.iter_mut().for_each(|v| *v *= scale);
    }
}

/// Restores every piece of training state captured in a durable
/// checkpoint (the caller sets `it` from `c.iter` itself, since some
/// call sites need the value before the borrow).
#[allow(clippy::too_many_arguments)]
fn apply_durable<M: Model>(
    c: &DurableCheckpoint,
    model: &mut M,
    opt: &mut MomentumSgd,
    engine: &mut StepEngine,
    local_velocity: &mut Option<Vec<f32>>,
    batches: &mut BatchIter,
    losses: &mut Vec<f64>,
    evals: &mut Vec<Option<f64>>,
    epoch_loss: &mut f64,
) {
    model.set_flat_params(&c.params);
    opt.set_velocity(&c.velocity);
    engine.restore_durable(&c.engine);
    *local_velocity = c.local_velocity.clone();
    batches.restore_position(c.data_epoch, c.data_cursor as usize);
    *losses = c.losses.clone();
    *evals = c.evals.clone();
    *epoch_loss = c.epoch_loss;
}

/// The joiner side of the rejoin handshake: broadcast JOIN_REQ (stamped
/// with the newest intact disk generation) to every other rank until a
/// WELCOME arrives, then return `(members, rollback_iter, coordinator,
/// epoch)`. Gives up after a generous multiple of the recovery timeout —
/// `None` means the cluster is gone (or never noticed us) and the
/// restarted process should exit instead of spinning forever.
fn request_join(
    comm: &mut Communicator,
    latest_iter: u64,
) -> Option<(Vec<usize>, u64, usize, u64)> {
    let slice_ms = 200u64;
    let deadline = std::time::Instant::now()
        + std::time::Duration::from_millis((comm.recovery_timeout_ms() * 20.0) as u64 + 2000);
    loop {
        for m in 0..comm.size() {
            if m != comm.rank() {
                // Best effort: some targets may themselves be dead.
                let _ = comm.send(
                    m,
                    Message::JOIN_REQ_TAG,
                    Payload::Scalar(latest_iter as f64),
                );
            }
        }
        let slice_end = std::time::Instant::now() + std::time::Duration::from_millis(slice_ms);
        while std::time::Instant::now() < slice_end {
            if let Some(msg) = comm.poll_tagged(Message::JOIN_WELCOME_TAG) {
                let coordinator = msg.src;
                let wire = msg.payload.into_dense();
                assert!(wire.len() >= 3, "malformed WELCOME frame");
                let epoch = wire[0] as u64;
                let rollback = wire[1] as u64;
                let members: Vec<usize> = wire[2..].iter().map(|&v| v as usize).collect();
                return Some((members, rollback, coordinator, epoch));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
    }
}

/// One full recovery round as seen by a surviving member: agree on
/// membership (shrunk or regrown) and the rollback iteration, restore
/// that in-memory checkpoint, maintain the pinned-anchor window, and —
/// when this rank coordinates a growth round — transfer model state to
/// the joiners. Returns `false` if no coordinator was reachable (this
/// rank was expelled and must leave the run).
#[allow(clippy::too_many_arguments)]
fn handle_recovery<M: Model>(
    comm: &mut Communicator,
    members: &mut Vec<usize>,
    ckpts: &mut VecDeque<Checkpoint>,
    pinned: &mut usize,
    known_joiners: &[(usize, u64)],
    durable: Option<&CheckpointStore>,
    model: &mut M,
    opt: &mut MomentumSgd,
    engine: &mut StepEngine,
    local_velocity: &mut Option<Vec<f32>>,
    batches: &mut BatchIter,
    losses: &mut Vec<f64>,
    evals: &mut Vec<Option<f64>>,
    epoch_loss: &mut f64,
    it: &mut u64,
    timing: &mut TimingBreakdown,
    t_start: f64,
) -> bool {
    let my_latest = ckpts
        .back()
        .expect("a checkpoint is taken before iteration 0")
        .iter;
    // The anchor is the rollback point the *previous* (shrink) round
    // agreed on — the newest pinned snapshot. Every survivor pinned the
    // same value, so a regrow round can always roll back to it.
    let my_anchor = if *pinned > 0 {
        ckpts[*pinned - 1].iter
    } else {
        my_latest
    };
    let prev = members.clone();
    match ft::recover(comm, &prev, my_latest, my_anchor, known_joiners) {
        Ok(rec) => {
            *members = rec.members.clone();
            match ckpts.iter().position(|c| c.iter == rec.rollback_iter) {
                Some(pos) => {
                    ckpts.truncate(pos + 1);
                    let c = ckpts.back().expect("just truncated to keep this");
                    model.set_flat_params(&c.params);
                    *opt = c.opt.clone();
                    engine.restore(&c.engine);
                    *local_velocity = c.local_velocity.clone();
                    *batches = c.batches.clone();
                    *losses = c.losses.clone();
                    *evals = c.evals.clone();
                    *epoch_loss = c.epoch_loss;
                    *it = c.iter;
                }
                None => {
                    // The agreed rollback predates the in-memory window
                    // (a joiner whose newest disk generation was corrupt
                    // fell back an extra interval). Reload it from this
                    // rank's own durable store and rebuild the deque.
                    let gen = durable
                        .expect("a rollback below the in-memory window needs a durable store")
                        .load(rec.rollback_iter)
                        .expect("agreed rollback generation is retained on disk");
                    apply_durable(
                        &gen,
                        model,
                        opt,
                        engine,
                        local_velocity,
                        batches,
                        losses,
                        evals,
                        epoch_loss,
                    );
                    *it = gen.iter;
                    ckpts.clear();
                    ckpts.push_back(Checkpoint {
                        iter: gen.iter,
                        params: model.flat_params(),
                        opt: opt.clone(),
                        engine: engine.snapshot(),
                        local_velocity: local_velocity.clone(),
                        batches: batches.clone(),
                        losses: losses.clone(),
                        evals: evals.clone(),
                        epoch_loss: *epoch_loss,
                    });
                }
            }
            let c = ckpts.back().expect("rollback target present");
            if rec.joined.is_empty() {
                // Shrink: pin everything up to (and including) the
                // rollback anchor so a later rejoin can still reach it.
                *pinned = ckpts.len();
            } else {
                // Regrow: back to full membership, drop the pins and any
                // stale join traffic (ranks that are members again must
                // not re-trigger a recovery round).
                *pinned = 0;
                comm.purge_pending(|m| {
                    m.tag == Message::JOIN_REQ_TAG || m.tag == Message::JOIN_WELCOME_TAG
                });
                if rec.coordinator == comm.rank() {
                    let off = ft::epoch_tag_offset(comm.epoch());
                    let params = std::sync::Arc::new(c.params.clone());
                    let velocity = std::sync::Arc::new(c.opt.velocity().to_vec());
                    for &j in &rec.joined {
                        let _ = comm.send(
                            j,
                            ft::TAG_XFER + off,
                            Payload::dense_shared(std::sync::Arc::clone(&params)),
                        );
                        let _ = comm.send(
                            j,
                            ft::TAG_XFER + off + 1,
                            Payload::dense_shared(std::sync::Arc::clone(&velocity)),
                        );
                    }
                }
            }
            timing.recovery_ms += comm.now_ms() - t_start;
            timing.recoveries += 1;
            true
        }
        Err(_) => false,
    }
}

/// Top-1 accuracy of `model` over the whole dataset, in chunks.
fn evaluate(model: &mut dyn Model, ds: &dyn Dataset) -> f64 {
    let chunk = 32usize;
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    let mut i = 0usize;
    while i < ds.len() {
        let end = (i + chunk).min(ds.len());
        let idx: Vec<usize> = (i..end).collect();
        let (x, ys) = ds.batch(&idx);
        let logits = model.forward(&x, false);
        let acc = accuracy(&logits, &ys) as f64;
        correct_weighted += acc * ys.len() as f64;
        total += ys.len();
        i = end;
    }
    if total == 0 {
        0.0
    } else {
        correct_weighted / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_data::GaussianMixture;
    use gtopk_nn::models;

    fn quick_cfg(alg: Algorithm, workers: usize) -> TrainConfig {
        TrainConfig {
            workers,
            batch_per_worker: 8,
            epochs: 3,
            algorithm: alg,
            lr: LrSchedule::constant(0.2),
            momentum: 0.9,
            density: DensitySchedule::constant(0.05),
            cost_model: CostModel::zero(),
            compute_cost: None,
            selector: Selector::Exact,
            topology: Topology::Binomial,
            momentum_correction: false,
            clip_norm: None,
            data_seed: 1,
            fault_plan: None,
            checkpoint_interval: 4,
            checkpoint_dir: None,
            overlap: None,
            ps: None,
        }
    }

    #[test]
    fn all_algorithms_reduce_loss() {
        let data = GaussianMixture::new(3, 256, 8, 4, 2.0, 0.4);
        for alg in Algorithm::ALL {
            let mut cfg = quick_cfg(alg, 4);
            // Six epochs: the budget-cascade algorithms (Ok-Topk, SparDL)
            // oscillate for a few epochs at this aggressive lr/momentum
            // while their witnessed-reject feedback settles, then
            // converge like the rest.
            cfg.epochs = 6;
            let report = train_distributed(&cfg, || models::mlp(7, 8, 16, 4), &data, None);
            let first = report.epochs[0].train_loss;
            let last = report.final_loss();
            assert!(
                last < first,
                "{}: loss did not drop ({first} -> {last})",
                alg.name()
            );
            assert_eq!(report.workers, 4);
            assert_eq!(report.epochs.len(), 6);
        }
    }

    #[test]
    fn plan_driven_algorithms_train_on_every_topology() {
        let data = GaussianMixture::new(6, 320, 8, 4, 2.5, 0.4);
        for topology in Topology::ALL {
            let mut cfg = quick_cfg(Algorithm::GTopK, 5).with_topology(topology);
            cfg.epochs = 5;
            let report = train_distributed(&cfg, || models::mlp(19, 8, 16, 4), &data, None);
            assert!(
                report.final_loss() < report.epochs[0].train_loss,
                "{topology}: loss did not drop"
            );
        }
    }

    #[test]
    fn eval_accuracy_improves_with_training() {
        let train = GaussianMixture::new(5, 256, 8, 4, 3.0, 0.3);
        // Same seed so train and eval share the class means; item noise
        // still differs because item indices map to different RNG streams.
        let eval = GaussianMixture::new(5, 64, 8, 4, 3.0, 0.3);
        let cfg = quick_cfg(Algorithm::GTopK, 4);
        let report = train_distributed(&cfg, || models::mlp(9, 8, 16, 4), &train, Some(&eval));
        let acc = report.final_accuracy().expect("eval ran");
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn replicas_stay_consistent_across_ranks() {
        // train_distributed asserts this internally; failure would panic.
        let data = GaussianMixture::new(8, 128, 6, 3, 2.0, 0.4);
        for alg in [Algorithm::Dense, Algorithm::GTopK, Algorithm::TopK] {
            let cfg = quick_cfg(alg, 3); // non-power-of-two on purpose
            let _ = train_distributed(&cfg, || models::mlp(11, 6, 8, 3), &data, None);
        }
    }

    #[test]
    fn gtopk_sends_fewer_elements_than_topk_at_scale() {
        let data = GaussianMixture::new(9, 512, 8, 4, 2.0, 0.4);
        let send = |alg| {
            let cfg = quick_cfg(alg, 8);
            train_distributed(&cfg, || models::mlp(13, 8, 32, 4), &data, None).elems_sent_rank0
        };
        let topk = send(Algorithm::TopK);
        let gtopk = send(Algorithm::GTopK);
        let dense = send(Algorithm::Dense);
        assert!(gtopk < topk, "gTop-k {gtopk} !< Top-k {topk}");
        assert!(topk < dense, "Top-k {topk} !< Dense {dense}");
    }

    #[test]
    fn timing_breakdown_reflects_compute_cost() {
        let data = GaussianMixture::new(10, 128, 6, 3, 2.0, 0.4);
        let mut cfg = quick_cfg(Algorithm::GTopK, 2);
        cfg.cost_model = CostModel::gigabit_ethernet();
        cfg.compute_cost = Some(ComputeCost {
            compute_ms: 5.0,
            sparsify_ms: 1.0,
        });
        let report = train_distributed(&cfg, || models::mlp(15, 6, 8, 3), &data, None);
        let (comp, compr, comm) = report.timing.per_iteration();
        assert!((comp - 5.0).abs() < 1e-9);
        assert!((compr - 1.0).abs() < 1e-9);
        assert!(comm > 0.0, "communication time must be charged");
        assert!(report.sim_time_ms > 0.0);
        assert!(report.throughput(8) > 0.0);
    }

    #[test]
    fn update_nnz_reflects_algorithm_semantics() {
        let data = GaussianMixture::new(14, 256, 16, 4, 2.0, 0.4);
        let build = || models::mlp(23, 16, 32, 4);
        let m = build().num_params();
        let run = |alg| {
            let mut cfg = quick_cfg(alg, 4);
            cfg.density = DensitySchedule::constant(0.02);
            cfg.epochs = 1;
            train_distributed(&cfg, build, &data, None)
        };
        let k = (0.02 * m as f64).round();
        let dense = run(Algorithm::Dense);
        assert_eq!(dense.mean_update_nnz, m as f64);
        let gtopk = run(Algorithm::GTopK);
        assert!(gtopk.mean_update_nnz <= k + 0.5, "gTop-k applies exactly k");
        let topk = run(Algorithm::TopK);
        assert!(
            topk.mean_update_nnz >= k - 0.5 && topk.mean_update_nnz <= 4.0 * k + 0.5,
            "Top-k applies K in [k, kP]: {}",
            topk.mean_update_nnz
        );
        assert!(topk.mean_update_nnz > gtopk.mean_update_nnz);
    }

    #[test]
    fn clip_to_norm_rescales_only_when_needed() {
        let mut g = vec![3.0f32, 4.0]; // norm 5
        clip_to_norm(&mut g, 10.0);
        assert_eq!(g, vec![3.0, 4.0]);
        clip_to_norm(&mut g, 1.0);
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6, "direction preserved");
    }

    #[test]
    fn clipped_training_converges() {
        let data = GaussianMixture::new(16, 256, 8, 4, 2.5, 0.4);
        let mut cfg = quick_cfg(Algorithm::GTopK, 4);
        cfg.clip_norm = Some(1.0);
        let report = train_distributed(&cfg, || models::mlp(27, 8, 16, 4), &data, None);
        assert!(report.final_loss() < report.epochs[0].train_loss);
    }

    #[test]
    fn momentum_correction_trains_and_stays_consistent() {
        let data = GaussianMixture::new(12, 256, 8, 4, 2.5, 0.4);
        let mut cfg = quick_cfg(Algorithm::GTopK, 4);
        cfg.momentum_correction = true;
        cfg.density = DensitySchedule::constant(0.01);
        cfg.epochs = 5;
        let report = train_distributed(&cfg, || models::mlp(21, 8, 16, 4), &data, None);
        assert!(
            report.final_loss() < 0.7 * report.epochs[0].train_loss,
            "correction run must converge: {} -> {}",
            report.epochs[0].train_loss,
            report.final_loss()
        );
    }

    #[test]
    fn inactive_fault_plan_is_bit_identical() {
        let data = GaussianMixture::new(31, 256, 8, 4, 2.0, 0.4);
        let build = || models::mlp(33, 8, 16, 4);
        let plain = quick_cfg(Algorithm::GTopK, 4);
        let mut gated = plain.clone();
        gated.fault_plan = Some(FaultPlan::none());
        let a = train_distributed(&plain, build, &data, None);
        let b = train_distributed(&gated, build, &data, None);
        for (ea, eb) in a.epochs.iter().zip(b.epochs.iter()) {
            assert_eq!(ea.train_loss, eb.train_loss, "losses must be bit-identical");
        }
        assert_eq!(a.elems_sent_rank0, b.elems_sent_rank0);
        assert_eq!(b.retransmissions, 0);
        assert_eq!(b.survivors, 4);
    }

    #[test]
    fn dropped_messages_are_retried_transparently() {
        let data = GaussianMixture::new(32, 256, 8, 4, 2.0, 0.4);
        let mut cfg = quick_cfg(Algorithm::GTopK, 4);
        cfg.fault_plan = Some(FaultPlan::seeded(7).with_drop_prob(0.15));
        let report = train_distributed(&cfg, || models::mlp(35, 8, 16, 4), &data, None);
        assert!(report.retransmissions > 0, "drops must force retransmits");
        assert_eq!(report.timing.recoveries, 0, "no membership change");
        assert_eq!(report.survivors, 4);
        assert!(report.final_loss() < report.epochs[0].train_loss);
    }

    #[test]
    fn fault_runs_are_deterministic_for_a_fixed_seed() {
        let data = GaussianMixture::new(33, 256, 8, 4, 2.0, 0.4);
        let mut cfg = quick_cfg(Algorithm::GTopK, 4);
        cfg.fault_plan = Some(FaultPlan::seeded(11).with_drop_prob(0.08));
        let run = || train_distributed(&cfg, || models::mlp(37, 8, 16, 4), &data, None);
        let (a, b) = (run(), run());
        assert_eq!(a.retransmissions, b.retransmissions);
        assert_eq!(a.sim_time_ms, b.sim_time_ms);
        for (ea, eb) in a.epochs.iter().zip(b.epochs.iter()) {
            assert_eq!(ea.train_loss, eb.train_loss);
        }
    }

    #[test]
    fn crashed_rank_shrinks_the_run_which_still_converges() {
        let data = GaussianMixture::new(34, 256, 8, 4, 2.5, 0.4);
        let build = || models::mlp(39, 8, 16, 4);
        // 4 ranks, rank 3 dies before its 11th iteration (mid-epoch 1).
        let mut cfg = quick_cfg(Algorithm::GTopK, 4);
        cfg.epochs = 4;
        cfg.cost_model = CostModel::gigabit_ethernet(); // nonzero α-β so recovery has a cost
        cfg.fault_plan = Some(FaultPlan::seeded(1).with_crash(3, 10));
        let faulted = train_distributed(&cfg, build, &data, None);
        assert_eq!(faulted.survivors, 3, "exactly one rank must be lost");
        assert!(faulted.timing.recoveries >= 1, "a recovery must be logged");
        assert!(faulted.timing.recovery_ms > 0.0);
        assert!(
            faulted.final_loss() < faulted.epochs[0].train_loss,
            "shrunk run must keep converging: {} -> {}",
            faulted.epochs[0].train_loss,
            faulted.final_loss()
        );

        // A fault-free 3-worker baseline on the same problem lands in
        // the same loss regime (shards differ, so not bit-identical).
        let mut base_cfg = quick_cfg(Algorithm::GTopK, 3);
        base_cfg.epochs = 4;
        let baseline = train_distributed(&base_cfg, build, &data, None);
        let (f, b) = (faulted.final_loss(), baseline.final_loss());
        assert!(
            (f - b).abs() <= 0.5 * b.max(0.1),
            "shrunk run must land near the 3-worker baseline: {f} vs {b}"
        );
    }

    #[test]
    fn feedback_variant_survives_a_crash_too() {
        let data = GaussianMixture::new(35, 256, 8, 4, 2.5, 0.4);
        let mut cfg = quick_cfg(Algorithm::GTopKFeedback, 4);
        cfg.epochs = 4;
        cfg.fault_plan = Some(FaultPlan::seeded(2).with_crash(1, 13));
        let report = train_distributed(&cfg, || models::mlp(41, 8, 16, 4), &data, None);
        assert_eq!(report.survivors, 3);
        assert!(report.final_loss() < report.epochs[0].train_loss);
    }

    #[test]
    fn straggler_inflates_sim_time_but_not_results() {
        let data = GaussianMixture::new(36, 256, 8, 4, 2.0, 0.4);
        let build = || models::mlp(43, 8, 16, 4);
        let mut slow = quick_cfg(Algorithm::GTopK, 4);
        slow.cost_model = CostModel::gigabit_ethernet();
        slow.fault_plan = Some(FaultPlan::seeded(3).with_straggler(2, 4.0));
        let mut fast = slow.clone();
        fast.fault_plan = Some(FaultPlan::seeded(3));
        let s = train_distributed(&slow, build, &data, None);
        let f = train_distributed(&fast, build, &data, None);
        assert!(
            s.sim_time_ms > f.sim_time_ms,
            "straggler must slow the run: {} !> {}",
            s.sim_time_ms,
            f.sim_time_ms
        );
        for (es, ef) in s.epochs.iter().zip(f.epochs.iter()) {
            assert_eq!(es.train_loss, ef.train_loss, "numerics must not change");
        }
    }

    #[test]
    fn overlap_composes_with_crash_recovery() {
        // --overlap --buckets 2 plus a scheduled crash: the run must
        // recover (rollback + shrink) and keep converging.
        let data = GaussianMixture::new(37, 256, 8, 4, 2.5, 0.4);
        let mut cfg = quick_cfg(Algorithm::GTopK, 4);
        cfg.epochs = 4;
        cfg.cost_model = CostModel::gigabit_ethernet();
        cfg.compute_cost = Some(ComputeCost {
            compute_ms: 4.0,
            sparsify_ms: 1.0,
        });
        cfg = cfg.with_overlap(OverlapConfig::buckets(2));
        cfg.fault_plan = Some(FaultPlan::seeded(4).with_crash(2, 9));
        let report = train_distributed(&cfg, || models::mlp(45, 8, 16, 4), &data, None);
        assert_eq!(report.survivors, 3, "exactly one rank must be lost");
        assert!(report.timing.recoveries >= 1, "a recovery must be logged");
        let stats = report.overlap.as_ref().expect("overlap stats present");
        assert!(stats.iterations > 0);
        assert!(
            report.final_loss() < report.epochs[0].train_loss,
            "overlapped run must keep converging through the crash: {} -> {}",
            report.epochs[0].train_loss,
            report.final_loss()
        );
    }

    #[test]
    fn single_bucket_overlap_ft_matches_the_serial_ft_loss_exactly() {
        // With one bucket the overlap engine performs the same
        // accumulate → select → gTopKAllReduce → put-back → step as the
        // serial path (bucket_k(m, ρ) and DensitySchedule::k round
        // identically, and step_range over 0..m is step_sparse), so the
        // same seed and the same crash must produce bit-identical losses
        // — only the timeline differs. P = 8 with a mid-run crash.
        let data = GaussianMixture::new(38, 512, 8, 4, 2.5, 0.4);
        let build = || models::mlp(47, 8, 16, 4);
        let mut serial = quick_cfg(Algorithm::GTopK, 8);
        serial.epochs = 3;
        serial.fault_plan = Some(FaultPlan::seeded(5).with_crash(6, 7));
        let overlapped = serial.clone().with_overlap(OverlapConfig::buckets(1));
        let a = train_distributed(&serial, build, &data, None);
        let b = train_distributed(&overlapped, build, &data, None);
        assert_eq!(a.survivors, 7);
        assert_eq!(b.survivors, 7);
        for (ea, eb) in a.epochs.iter().zip(b.epochs.iter()) {
            assert_eq!(
                ea.train_loss, eb.train_loss,
                "single-bucket overlap must replay the serial FT numerics"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dataset too small")]
    fn undersized_dataset_rejected() {
        let data = GaussianMixture::new(11, 8, 4, 2, 2.0, 0.4);
        let cfg = quick_cfg(Algorithm::Dense, 4);
        let _ = train_distributed(&cfg, || models::mlp(1, 4, 4, 2), &data, None);
    }

    fn unique_dir(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gtopk-elastic-{label}-{}", std::process::id()))
    }

    /// Runs `cfg` over a manually wired mesh so a victim rank can be
    /// killed and *restarted* (the [`Cluster`] harness cannot re-spawn a
    /// thread). With `victim = Some((rank, step, corrupt))` that rank
    /// crashes at comm-local `step`, optionally has its newest durable
    /// generation truncated (torn-write drill), and is then re-wired in
    /// to rejoin from disk. Returns per-rank reports in rank order.
    fn run_elastic(
        data: &GaussianMixture,
        cfg: &TrainConfig,
        victim: Option<(usize, u64, bool)>,
    ) -> Vec<TrainReport> {
        use gtopk_comm::transport::SimTransport;
        let build = || models::mlp(61, 8, 16, 4);
        let (mesh, ends) = SimTransport::mesh_with_handle(cfg.workers);
        std::thread::scope(|scope| {
            let mut handles: Vec<Option<_>> = ends
                .into_iter()
                .enumerate()
                .map(|(rank, endpoint)| {
                    let mut vcfg = cfg.clone();
                    if let Some((v, step, _)) = victim {
                        if rank == v {
                            let base = vcfg.fault_plan.clone().expect("elastic runs arm a plan");
                            vcfg.fault_plan = Some(base.with_crash(v, step));
                        }
                    }
                    Some(scope.spawn(move || {
                        let mut comm =
                            Communicator::from_transport(Box::new(endpoint), vcfg.cost_model);
                        train_rank(&vcfg, &mut comm, build, data, None)
                    }))
                })
                .collect();
            if let Some((v, _, corrupt)) = victim {
                let dead = handles[v].take().expect("victim handle").join().unwrap();
                assert!(dead.is_none(), "the victim must report a crash");
                if corrupt {
                    let dir = cfg.checkpoint_dir.as_ref().expect("elastic runs set a dir");
                    let store = CheckpointStore::new(dir, v).unwrap();
                    let newest = *store
                        .generations()
                        .last()
                        .expect("victim wrote checkpoints");
                    let path = dir.join(format!("ckpt-{v:04}-{newest:012}.bin"));
                    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                    f.set_len(9).unwrap(); // tear the newest generation
                }
                // The restarted incarnation: crash-free plan (its comm
                // step counter restarts at 0), same checkpoint directory.
                let rcfg = cfg.clone();
                let endpoint = mesh.rejoin(v);
                handles[v] = Some(scope.spawn(move || {
                    let mut comm =
                        Communicator::from_transport(Box::new(endpoint), rcfg.cost_model);
                    train_rank(&rcfg, &mut comm, build, data, None)
                }));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| {
                    h.expect("handle present")
                        .join()
                        .unwrap()
                        .unwrap_or_else(|| panic!("rank {rank} must finish the run"))
                })
                .collect()
        })
    }

    fn elastic_cfg(dir: Option<std::path::PathBuf>) -> TrainConfig {
        let mut cfg = quick_cfg(Algorithm::GTopK, 4);
        cfg.epochs = 10; // 8 iters/epoch on 256 items: 80 iterations
        cfg.fault_plan = Some(FaultPlan::seeded(9));
        cfg.checkpoint_dir = dir;
        cfg
    }

    #[test]
    fn killed_rank_rejoins_from_disk_and_matches_the_fault_free_run() {
        let data = GaussianMixture::new(61, 256, 8, 4, 2.5, 0.4);
        let dir = unique_dir("rejoin");
        let _ = std::fs::remove_dir_all(&dir);
        // Crash rank 3 at step 21 (one past the it=20 boundary, so every
        // rank's checkpoint window is aligned at [16, 20]).
        let elastic = run_elastic(&data, &elastic_cfg(Some(dir.clone())), Some((3, 21, false)));
        let baseline = run_elastic(&data, &elastic_cfg(None), None);
        for (rank, (e, b)) in elastic.iter().zip(&baseline).enumerate() {
            assert_eq!(e.survivors, 4, "rank {rank} must end with full membership");
            for (ee, eb) in e.epochs.iter().zip(&b.epochs) {
                assert!(
                    (ee.train_loss - eb.train_loss).abs() <= 1e-9,
                    "rank {rank} epoch {}: elastic {} vs fault-free {}",
                    ee.epoch,
                    ee.train_loss,
                    eb.train_loss
                );
            }
        }
        // Survivors log at least one round (the crash and the rejoin
        // collapse into a single round when the restart is fast enough
        // for the coordinator to spot the JOIN_REQ while collecting
        // ALIVEs); the joiner logs its verified state transfer.
        assert!(elastic[0].timing.recoveries >= 1, "survivor recoveries");
        assert!(elastic[3].timing.recoveries >= 1, "joiner recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejoin_survives_a_torn_newest_generation() {
        let data = GaussianMixture::new(61, 256, 8, 4, 2.5, 0.4);
        let dir = unique_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        // The victim's newest on-disk generation (it = 20) is truncated
        // before the restart: the joiner must fall back to 16 and the
        // whole membership must roll back there with it.
        let elastic = run_elastic(&data, &elastic_cfg(Some(dir.clone())), Some((3, 21, true)));
        let baseline = run_elastic(&data, &elastic_cfg(None), None);
        for (rank, (e, b)) in elastic.iter().zip(&baseline).enumerate() {
            assert_eq!(e.survivors, 4, "rank {rank} must end with full membership");
            for (ee, eb) in e.epochs.iter().zip(&b.epochs) {
                assert!(
                    (ee.train_loss - eb.train_loss).abs() <= 1e-9,
                    "rank {rank} epoch {}: elastic {} vs fault-free {}",
                    ee.epoch,
                    ee.train_loss,
                    eb.train_loss
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_checkpoints_cost_zero_simulated_time() {
        // Same crash-and-shrink run with and without a checkpoint
        // directory: durable I/O is wall-clock only, so the simulated
        // clock and the numerics must be bit-identical.
        let data = GaussianMixture::new(34, 256, 8, 4, 2.5, 0.4);
        let build = || models::mlp(39, 8, 16, 4);
        let mut plain = quick_cfg(Algorithm::GTopK, 4);
        plain.epochs = 4;
        plain.cost_model = CostModel::gigabit_ethernet();
        plain.fault_plan = Some(FaultPlan::seeded(1).with_crash(3, 10));
        let dir = unique_dir("overhead");
        let _ = std::fs::remove_dir_all(&dir);
        let mut durable = plain.clone();
        durable.checkpoint_dir = Some(dir.clone());
        let a = train_distributed(&plain, build, &data, None);
        let b = train_distributed(&durable, build, &data, None);
        assert_eq!(
            a.sim_time_ms, b.sim_time_ms,
            "durable checkpoints must cost exactly zero simulated time"
        );
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ea.train_loss, eb.train_loss, "numerics must not change");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn solo_run_cold_resumes_from_disk() {
        // A single worker needs no rejoin protocol: a restart with the
        // same directory resumes from the newest intact generation and
        // must land exactly where an uninterrupted run lands.
        let data = GaussianMixture::new(44, 128, 8, 4, 2.0, 0.4);
        let build = || models::mlp(53, 8, 16, 4);
        let dir = unique_dir("solo");
        let _ = std::fs::remove_dir_all(&dir);
        let mut short = quick_cfg(Algorithm::GTopK, 1);
        short.epochs = 2;
        short.checkpoint_dir = Some(dir.clone());
        let _ = train_distributed(&short, build, &data, None);
        let mut resumed = short.clone();
        resumed.epochs = 4;
        let resumed_report = train_distributed(&resumed, build, &data, None);
        let mut full = resumed.clone();
        full.checkpoint_dir = None;
        let full_report = train_distributed(&full, build, &data, None);
        for (er, ef) in resumed_report.epochs.iter().zip(&full_report.epochs) {
            assert_eq!(
                er.train_loss, ef.train_loss,
                "epoch {}: cold resume must replay the uninterrupted run",
                er.epoch
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
