//! Parameter-server gTop-k (paper footnote 2: the mechanism "is also
//! applicable to the Parameter Server based distributed SGD").
//!
//! Rank 0 acts as the server: every worker pushes its k-sparse gradient,
//! the server computes the exact sparse sum and its global top-k, and
//! pushes the result back to every worker (star topology). The server
//! link carries `O(kP)` traffic — the comparison point that motivates
//! the decentralized tree in the first place; we provide it both for
//! completeness and as the ablation baseline for the topology choice.

use gtopk_comm::{Communicator, Message, Payload, Result};
use gtopk_sparse::{topk_sparse, Mask, SparseVec};

const TAG_PS_PUSH: u32 = Message::COLLECTIVE_TAG_BASE + 96;
const TAG_PS_PULL: u32 = Message::COLLECTIVE_TAG_BASE + 97;

/// Parameter-server global top-k: push to rank 0, exact-sum + top-k
/// there, pull back.
///
/// Every rank receives the identical `(global top-k of the sparse sum,
/// selection mask)` — semantically the same result as
/// [`crate::naive_gtopk_all_reduce`], at star-topology cost.
///
/// # Errors
///
/// Propagates transport errors.
pub fn ps_gtopk_all_reduce(
    comm: &mut Communicator,
    local: SparseVec,
    k: usize,
) -> Result<(SparseVec, Mask)> {
    let p = comm.size();
    let dim = local.dim();
    let global = if comm.rank() == 0 {
        let mut sum = local;
        for src in 1..p {
            let msg = comm.recv(src, TAG_PS_PUSH)?;
            sum = sum.add(&msg.payload.into_sparse());
        }
        let dense = sum.to_dense();
        let global = topk_sparse(&dense, k.min(sum.nnz()));
        // One shared buffer serves every star-topology pull reply.
        let shared = std::sync::Arc::new(global);
        for dst in 1..p {
            comm.send(dst, TAG_PS_PULL, Payload::sparse_shared(shared.clone()))?;
        }
        match std::sync::Arc::try_unwrap(shared) {
            Ok(v) => v,
            Err(shared) => {
                let mut owned = comm.pool().take_sparse(dim);
                owned.copy_from(&shared);
                owned
            }
        }
    } else {
        comm.send(0, TAG_PS_PUSH, Payload::sparse(local))?;
        comm.recv(0, TAG_PS_PULL)?.payload.into_sparse()
    };
    debug_assert_eq!(global.dim(), dim);
    let mask = Mask::of_sparse(&global);
    Ok((global, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_gtopk_all_reduce;
    use gtopk_comm::{Cluster, CostModel};
    use gtopk_sparse::topk_sparse as tks;

    fn grad(rank: usize, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = (i as u64 + 29)
                    .wrapping_mul(rank as u64 + 3)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn ps_matches_naive_gtopk_semantics() {
        for p in [1usize, 2, 3, 4, 8] {
            let (dim, k) = (64usize, 5usize);
            let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let local = tks(&grad(comm.rank(), dim), k);
                let ps = ps_gtopk_all_reduce(comm, local.clone(), k).unwrap();
                let naive = naive_gtopk_all_reduce(comm, local, k).unwrap();
                (ps, naive)
            });
            for ((pv, pm), (nv, nm)) in out {
                // Indices identical; values agree up to FP summation
                // order (star fold vs recursive doubling).
                assert_eq!(pv.indices(), nv.indices(), "P={p}");
                for (a, b) in pv.values().iter().zip(nv.values()) {
                    assert!(
                        (a - b).abs() <= 1e-5 * a.abs().max(1.0),
                        "P={p}: {a} vs {b}"
                    );
                }
                assert_eq!(pm, nm);
            }
        }
    }

    #[test]
    fn server_traffic_is_linear_in_p() {
        let (dim, k) = (4096usize, 16usize);
        let server_elems = |p: usize| {
            let stats = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let local = tks(&grad(comm.rank(), dim), k);
                ps_gtopk_all_reduce(comm, local, k).unwrap();
                comm.stats()
            });
            stats[0].elems_sent + stats[0].elems_received
        };
        let t4 = server_elems(4);
        let t16 = server_elems(16);
        let ratio = t16 as f64 / t4 as f64;
        assert!(
            (3.0..8.0).contains(&ratio),
            "PS server traffic must grow ~linearly: {t4} -> {t16}"
        );
    }

    #[test]
    fn ps_time_scales_linearly_while_tree_scales_logarithmically() {
        let (dim, k) = (100_000usize, 100usize);
        let cost = CostModel::gigabit_ethernet();
        let time = |p: usize, use_ps: bool| {
            Cluster::new(p, cost)
                .run(move |comm| {
                    let local = tks(&grad(comm.rank(), dim), k);
                    if use_ps {
                        ps_gtopk_all_reduce(comm, local, k).unwrap();
                    } else {
                        crate::gtopk_all_reduce(comm, local, k).unwrap();
                    }
                    comm.now_ms()
                })
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        let ps_ratio = time(16, true) / time(4, true);
        let tree_ratio = time(16, false) / time(4, false);
        assert!(
            ps_ratio > 2.5,
            "PS time should ~4x from P=4 to 16: {ps_ratio}"
        );
        assert!(tree_ratio < 2.2, "tree time should ~2x: {tree_ratio}");
    }
}
