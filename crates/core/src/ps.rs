//! Sharded parameter-server gTop-k S-SGD (paper footnote 2: the
//! mechanism "is also applicable to the Parameter Server based
//! distributed SGD").
//!
//! The model is split into `S` contiguous regions by a
//! [`ShardMap`]; shard `s` is hosted on rank `members[s]` (servers are
//! co-located with workers, round-robin if the membership shrinks below
//! `S`). Every iteration:
//!
//! 1. **Push** — each worker extracts the top-`k_s` coordinates of its
//!    error-feedback residual *within every shard region* (stratified
//!    selection, budgets apportioned by [`ShardMap::budgets`]) and sends
//!    each region's k-sparse slice to its host. Wire size per push is
//!    `2·k_s` — a static function of the configuration, which is what
//!    lets `gtopk_perfmodel::ps_plan_ms` replay executed time exactly.
//! 2. **Serve** — each host folds the pushes of its region in ascending
//!    source order (the same deterministic fold the old star server
//!    used), reselects the top-`k_s` of the summed region, and sends the
//!    *dense* selected region (`len_s` elements) back to every worker.
//!    Servers are stateless between rounds: all persistent state (the
//!    residual) lives on the workers, so a dead shard host is recovered
//!    by the ordinary rollback path and the shard simply remaps.
//! 3. **Pull** — each worker rebuilds the global sparse update from the
//!    shard replies (in shard order, so indices stay sorted), returns
//!    globally-rejected coordinates to its residual, scales by `1/P`,
//!    and applies the update.
//!
//! [`PsVariant::BulkSync`] applies round `t`'s pull in step `t` — at
//! `S = 1` this is exactly the old single-server star baseline (its loss
//! trajectory is pinned bit-for-bit in `tests/ps_parity.rs`).
//! [`PsVariant::WaitFree`] pipelines: the worker defers each round's
//! pull and applies round `t − B` at step `t` (`B` = the staleness
//! bound), so push traffic of the next rounds overlaps the servers'
//! previous fold. No worker ever applies a shard update older than `B`
//! rounds — the bound holds *by construction* and is asserted in
//! `tests/ps_staleness.rs` — and replicas stay bit-identical because
//! every worker defers identically.

use crate::ft::epoch_tag_offset;
use gtopk_comm::{Communicator, Message, Payload, Result, ShardMap};
use gtopk_nn::{Model, MomentumSgd};
use gtopk_sparse::{topk_indices_into, Mask, Residual, SparseVec, TopkScratch};
use std::collections::VecDeque;

/// Per-shard push tag band (`+ s` for shard `s`, plus the membership
/// epoch's tag offset). Offsets 2560.. keep clear of the collective,
/// recovery and zoo bands while staying inside one epoch stride.
const TAG_PS_PUSH: u32 = Message::COLLECTIVE_TAG_BASE + 2560;
/// Per-shard pull (dense shard update) tag band.
const TAG_PS_PULL: u32 = Message::COLLECTIVE_TAG_BASE + 3328;

/// Execution discipline of the parameter-server mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsVariant {
    /// Classic bulk-synchronous parallel: every step pushes, waits for
    /// all shard replies, and applies them before the next step.
    BulkSync,
    /// Wait-free pipelining with a hard staleness bound: step `t`
    /// applies the shard updates of round `t − staleness_bound`.
    /// `staleness_bound = 0` degenerates to [`PsVariant::BulkSync`].
    WaitFree {
        /// Maximum age, in rounds, of the shard updates a worker may
        /// apply (and the pipeline depth of deferred pulls).
        staleness_bound: usize,
    },
}

/// Configuration of the parameter-server execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsConfig {
    /// Number of server shards `S` (each owning one contiguous model
    /// region, hosted on `members[s % P]`).
    pub shards: usize,
    /// Bulk-synchronous or bounded-staleness execution.
    pub variant: PsVariant,
}

impl PsConfig {
    /// Bulk-synchronous sharded PS.
    pub fn bulk_sync(shards: usize) -> Self {
        PsConfig {
            shards,
            variant: PsVariant::BulkSync,
        }
    }

    /// Wait-free sharded PS with the given staleness bound.
    pub fn wait_free(shards: usize, staleness_bound: usize) -> Self {
        PsConfig {
            shards,
            variant: PsVariant::WaitFree { staleness_bound },
        }
    }

    /// The staleness bound (0 for bulk-synchronous execution).
    pub fn staleness_bound(&self) -> usize {
        match self.variant {
            PsVariant::BulkSync => 0,
            PsVariant::WaitFree { staleness_bound } => staleness_bound,
        }
    }
}

/// One worker's half-finished round: the combined local contribution
/// (for error-feedback put-back once the global selection is known) and
/// the selected dense regions of the shards this rank hosts (its own
/// "replies to itself", never sent over the wire).
struct PendingRound {
    combined_local: SparseVec,
    own_replies: Vec<(usize, Vec<f32>)>,
}

/// Push phase of one PS round: send this worker's per-shard k-sparse
/// slices to their hosts, and — for every shard *this* rank hosts —
/// fold all pushes in ascending source order, reselect the region's
/// top-`k_s`, and send the dense selected region to every other worker.
///
/// `locals[s]` must carry global (full-dim) indices confined to
/// `map.range(s)` with exactly `budgets[s]` entries (zero-padded by the
/// stratified extraction when a region runs out of nonzeros), so every
/// message size is statically known. Returns the selected dense regions
/// of the shards hosted here, to be consumed by [`ps_pull_round`].
///
/// # Errors
///
/// Propagates transport errors (a dead shard host surfaces here and
/// takes the ordinary recovery path).
pub fn ps_push_round(
    comm: &mut Communicator,
    members: &[usize],
    map: &ShardMap,
    budgets: &[usize],
    locals: Vec<SparseVec>,
) -> Result<Vec<(usize, Vec<f32>)>> {
    let me = comm.rank();
    let off = epoch_tag_offset(comm.epoch());
    debug_assert_eq!(locals.len(), map.num_shards());
    let mut hosted: Vec<(usize, SparseVec)> = Vec::new();
    for (s, local_s) in locals.into_iter().enumerate() {
        debug_assert_eq!(local_s.nnz(), budgets[s], "shard {s} push must be padded");
        let host = map.host(s, members);
        if host == me {
            hosted.push((s, local_s));
        } else {
            comm.send(host, TAG_PS_PUSH + s as u32 + off, Payload::sparse(local_s))?;
        }
    }

    let mut scratch = TopkScratch::new();
    let mut sel_idx: Vec<u32> = Vec::new();
    let mut own_replies = Vec::with_capacity(hosted.len());
    for (s, local_s) in hosted {
        let range = map.range(s);
        let start = range.start;
        let mut region = vec![0.0f32; range.len()];
        // Deterministic fold: own contribution first, then every other
        // member ascending — per coordinate the same addition sequence
        // as the old star server's sparse fold.
        local_s.add_into_region(start, &mut region);
        for &src in members {
            if src == me {
                continue;
            }
            let msg = comm.recv(src, TAG_PS_PUSH + s as u32 + off)?;
            msg.payload
                .into_sparse()
                .add_into_region(start, &mut region);
        }
        // Reselect the region's top-k_s of the sum; the reply is the
        // *dense* selected region (zeros everywhere else), so the pull
        // wire cost is the honest `len_s` elements of a dense shard.
        topk_indices_into(&region, budgets[s], &mut scratch, &mut sel_idx);
        let mut selected = vec![0.0f32; region.len()];
        for &i in &sel_idx {
            selected[i as usize] = region[i as usize];
        }
        let shared = std::sync::Arc::new(selected);
        for &dst in members {
            if dst != me {
                comm.send(
                    dst,
                    TAG_PS_PULL + s as u32 + off,
                    Payload::dense_shared(std::sync::Arc::clone(&shared)),
                )?;
            }
        }
        let selected = std::sync::Arc::try_unwrap(shared).unwrap_or_else(|a| a.as_ref().clone());
        own_replies.push((s, selected));
    }
    Ok(own_replies)
}

/// Pull phase of one PS round: receive every shard's dense selected
/// region (in ascending shard order; shards hosted here use the local
/// copy from [`ps_push_round`]) and rebuild the *unscaled* global
/// sparse update — indices stay sorted because shard regions are
/// contiguous and ascending.
///
/// # Errors
///
/// Propagates transport errors.
pub fn ps_pull_round(
    comm: &mut Communicator,
    members: &[usize],
    map: &ShardMap,
    own_replies: &[(usize, Vec<f32>)],
) -> Result<SparseVec> {
    let me = comm.rank();
    let off = epoch_tag_offset(comm.epoch());
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    for s in 0..map.num_shards() {
        let start = map.range(s).start as u32;
        let host = map.host(s, members);
        let append = |region: &[f32], indices: &mut Vec<u32>, values: &mut Vec<f32>| {
            for (i, &v) in region.iter().enumerate() {
                if v != 0.0 {
                    indices.push(start + i as u32);
                    values.push(v);
                }
            }
        };
        if host == me {
            let (_, region) = own_replies
                .iter()
                .find(|(sh, _)| *sh == s)
                .expect("hosted shard reply retained by the push phase");
            append(region, &mut indices, &mut values);
        } else {
            let msg = comm.recv(host, TAG_PS_PULL + s as u32 + off)?;
            append(msg.payload.as_dense(), &mut indices, &mut values);
        }
    }
    Ok(SparseVec::from_sorted(map.dim(), indices, values))
}

/// The per-rank parameter-server execution engine: owns the worker's
/// error-feedback residual and (in wait-free mode) the pipeline of
/// deferred rounds. Plugged into the trainer's `StepEngine` as the
/// third execution mode next to serial and overlap.
pub struct PsEngine {
    cfg: PsConfig,
    residual: Residual,
    pending: VecDeque<PendingRound>,
}

impl PsEngine {
    /// A fresh engine for a `dim`-parameter model.
    pub fn new(cfg: PsConfig, dim: usize) -> Self {
        PsEngine {
            cfg,
            residual: Residual::new(dim),
            pending: VecDeque::new(),
        }
    }

    /// The configured execution variant.
    pub fn config(&self) -> &PsConfig {
        &self.cfg
    }

    /// Age, in rounds, of the oldest pushed-but-unapplied round — the
    /// observable the bounded-staleness invariant is stated over. Always
    /// `0` for bulk-synchronous execution; never exceeds the staleness
    /// bound in wait-free mode.
    pub fn lag(&self) -> usize {
        self.pending.len()
    }

    /// The effective shard count under the current membership (shards
    /// never outnumber live members, so each host owns at most
    /// `ceil(S/P)` regions and `S = P` keeps one shard per rank).
    fn effective_shards(&self, members: &[usize]) -> usize {
        self.cfg.shards.min(members.len())
    }

    /// One PS round: accumulate `src` into the residual, stratified
    /// push, and apply every round older than the staleness bound
    /// (bulk-sync: this very round). Returns the applied non-zero count.
    ///
    /// # Errors
    ///
    /// Propagates transport errors; the caller (trainer) rolls back via
    /// the ordinary checkpoint recovery, which restores the residual and
    /// drops the half-finished pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        src: &[f32],
        k: usize,
        opt: &mut MomentumSgd,
        model: &mut dyn Model,
    ) -> Result<u64> {
        let map = ShardMap::new(self.residual.dim(), self.effective_shards(members));
        let budgets = map.budgets(k);
        self.residual.accumulate(src);
        let mut locals = Vec::with_capacity(map.num_shards());
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        for (s, &budget) in budgets.iter().enumerate() {
            let l = self.residual.extract_topk_range(map.range(s), budget);
            idx.extend_from_slice(l.indices());
            val.extend_from_slice(l.values());
            locals.push(l);
        }
        let combined_local = SparseVec::from_sorted(self.residual.dim(), idx, val);
        let own_replies = ps_push_round(comm, members, &map, &budgets, locals)?;
        self.pending.push_back(PendingRound {
            combined_local,
            own_replies,
        });

        let mut applied = 0u64;
        while self.pending.len() > self.cfg.staleness_bound() {
            applied += self.apply_oldest(comm, members, &map, opt, model)?;
        }
        Ok(applied)
    }

    /// Applies every still-deferred round (wait-free mode after the last
    /// training step), leaving no gradient mass stranded in flight.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn drain(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        opt: &mut MomentumSgd,
        model: &mut dyn Model,
    ) -> Result<u64> {
        let map = ShardMap::new(self.residual.dim(), self.effective_shards(members));
        let mut applied = 0u64;
        while !self.pending.is_empty() {
            applied += self.apply_oldest(comm, members, &map, opt, model)?;
        }
        Ok(applied)
    }

    fn apply_oldest(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        map: &ShardMap,
        opt: &mut MomentumSgd,
        model: &mut dyn Model,
    ) -> Result<u64> {
        let round = self.pending.pop_front().expect("caller checked non-empty");
        let mut global = ps_pull_round(comm, members, map, &round.own_replies)?;
        // Identical error-feedback discipline to the allreduce family:
        // locally-selected coordinates the global selection rejected go
        // back into the residual; nothing is silently dropped.
        let mask = Mask::of_sparse(&global);
        let (_kept, rejected) = round.combined_local.partition_by(&mask);
        self.residual.put_back(&rejected);
        global.scale(1.0 / members.len() as f32);
        let nnz = global.nnz() as u64;
        opt.step_sparse(model, &global);
        Ok(nnz)
    }

    /// Dense view of the residual, for checkpointing.
    pub fn residual_dense(&self) -> &[f32] {
        self.residual.dense()
    }

    /// Restores the residual from a checkpoint. Only valid at a round
    /// boundary with an empty pipeline (checkpoints and rollback are
    /// bulk-sync-only, where that always holds).
    pub fn restore_residual(&mut self, saved: &[f32]) {
        assert!(
            self.pending.is_empty() || saved.len() == self.residual.dim(),
            "restore with rounds in flight"
        );
        self.pending.clear();
        self.residual.clear();
        self.residual.accumulate(saved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};
    use gtopk_sparse::topk_sparse;

    fn grad(rank: usize, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = (i as u64 + 29)
                    .wrapping_mul(rank as u64 + 3)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    /// Runs one BulkSync push+pull round from fresh residuals and
    /// returns each rank's unscaled global update.
    fn one_round(p: usize, dim: usize, shards: usize, k: usize) -> Vec<SparseVec> {
        Cluster::new(p, CostModel::zero()).run(move |comm| {
            let members: Vec<usize> = (0..p).collect();
            let map = ShardMap::new(dim, shards);
            let budgets = map.budgets(k);
            let mut residual = Residual::new(dim);
            residual.accumulate(&grad(comm.rank(), dim));
            let locals: Vec<SparseVec> = (0..map.num_shards())
                .map(|s| residual.extract_topk_range(map.range(s), budgets[s]))
                .collect();
            let own = ps_push_round(comm, &members, &map, &budgets, locals).unwrap();
            ps_pull_round(comm, &members, &map, &own).unwrap()
        })
    }

    #[test]
    fn all_ranks_agree_on_the_global_update() {
        for (p, shards) in [(2, 1), (3, 2), (4, 4), (8, 3)] {
            let out = one_round(p, 96, shards, 9);
            for o in &out[1..] {
                assert_eq!(o, &out[0], "P={p} S={shards}");
            }
        }
    }

    #[test]
    fn single_shard_matches_star_topk_of_exact_sum() {
        // S=1 with fresh residuals: the update must be exactly the
        // top-k of the summed per-rank top-k contributions — the old
        // star server's semantics.
        let (p, dim, k) = (4usize, 64usize, 5usize);
        let out = one_round(p, dim, 1, k);
        let mut sum = SparseVec::empty(dim);
        for r in 0..p {
            let mut res = Residual::new(dim);
            res.accumulate(&grad(r, dim));
            sum = sum.add(&res.extract_topk(k));
        }
        let expect = topk_sparse(&sum.to_dense(), k);
        assert_eq!(out[0].indices(), expect.indices());
        for (a, b) in out[0].values().iter().zip(expect.values()) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
        }
    }

    #[test]
    fn sharded_update_is_union_of_regional_selections() {
        let (p, dim, shards, k) = (4usize, 60usize, 3usize, 9usize);
        let out = one_round(p, dim, shards, k);
        let map = ShardMap::new(dim, shards);
        let budgets = map.budgets(k);
        // Reference: each server re-selects over the *sum of the pushed
        // per-rank regional top-k_s extracts*, not the exact dense sum.
        let mut dense_sum = vec![0.0f32; dim];
        for r in 0..p {
            let mut res = Residual::new(dim);
            res.accumulate(&grad(r, dim));
            for (s, &budget) in budgets.iter().enumerate() {
                res.extract_topk_range(map.range(s), budget)
                    .add_into_dense(&mut dense_sum);
            }
        }
        for (s, &budget) in budgets.iter().enumerate() {
            let range = map.range(s);
            let region_update: Vec<(u32, f32)> = out[0]
                .iter()
                .filter(|(i, _)| range.contains(&(*i as usize)))
                .collect();
            assert_eq!(region_update.len(), budget, "shard {s} budget");
            let expect = topk_sparse(&dense_sum[range.clone()], budget);
            let got_idx: Vec<u32> = region_update
                .iter()
                .map(|(i, _)| i - range.start as u32)
                .collect();
            assert_eq!(got_idx, expect.indices(), "shard {s} selection");
        }
    }

    #[test]
    fn server_traffic_splits_across_shard_hosts() {
        let (p, dim, k) = (8usize, 4096usize, 64usize);
        let elems = |shards: usize| {
            let stats = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let members: Vec<usize> = (0..p).collect();
                let map = ShardMap::new(dim, shards);
                let budgets = map.budgets(k);
                let mut residual = Residual::new(dim);
                residual.accumulate(&grad(comm.rank(), dim));
                let locals: Vec<SparseVec> = (0..map.num_shards())
                    .map(|s| residual.extract_topk_range(map.range(s), budgets[s]))
                    .collect();
                let own = ps_push_round(comm, &members, &map, &budgets, locals).unwrap();
                ps_pull_round(comm, &members, &map, &own).unwrap();
                comm.stats()
            });
            stats
                .iter()
                .map(|s| s.elems_sent + s.elems_received)
                .max()
                .unwrap()
        };
        let star = elems(1);
        let sharded = elems(8);
        assert!(
            sharded * 3 < star,
            "8-way sharding must shrink the hottest endpoint: {star} -> {sharded}"
        );
    }
}
