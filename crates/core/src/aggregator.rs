//! Gradient aggregation strategies — the three S-SGD variants the paper
//! evaluates, plus extensions — behind one [`GradientAggregator`] trait.
//!
//! The trainer hands every aggregator the worker's error-feedback
//! [`Residual`] buffer (already containing this iteration's accumulated
//! gradient), the live membership, and the selection budget `k`; the
//! aggregator extracts what it needs, exchanges it across the members,
//! handles residual put-back, and returns the *averaged* global update
//! to apply. The gTop-k tree variants run their collectives as
//! epoch-stamped plan executions over the member positions, so the same
//! aggregator objects serve the plain and the fault-tolerant training
//! loops (shrunken memberships included) and accept any
//! [`Topology`].

use crate::ft::epoch_tag_offset;
use crate::gtopk_allreduce::{gtopk_all_reduce_over, naive_gtopk_all_reduce};
use crate::selector::{Selector, SelectorState};
use crate::sparse_coll::{sparse_sum_recursive_doubling, sparse_zoo_all_reduce_over};
use gtopk_comm::{collectives, Communicator, Result, Topology};
use gtopk_perfmodel::ZooSchedule;
use gtopk_sparse::{Residual, SparseVec};

/// Lazily-initialized per-rank local top-k extraction (the rank is only
/// known once a communicator is in hand).
#[derive(Debug, Default)]
struct LocalSelect {
    selector: Selector,
    state: Option<SelectorState>,
}

impl LocalSelect {
    fn new(selector: Selector) -> Self {
        LocalSelect {
            selector,
            state: None,
        }
    }

    /// Fused accumulate + extract (one memory pass for the
    /// threshold-estimate selector; accumulate-then-extract otherwise).
    fn accumulate_extract(
        &mut self,
        comm: &Communicator,
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> SparseVec {
        self.state_for(comm).accumulate_extract(residual, grad, k)
    }

    fn state_for(&mut self, comm: &Communicator) -> &mut SelectorState {
        let selector = self.selector;
        self.state
            .get_or_insert_with(|| SelectorState::new(selector, comm.rank()))
    }

    /// The materialized per-rank state, once an iteration has run.
    fn state(&self) -> Option<&SelectorState> {
        self.state.as_ref()
    }

    /// Restores a previously captured state (process restart), resuming
    /// the RNG stream exactly where the checkpoint froze it.
    fn restore(&mut self, state: SelectorState) {
        self.state = Some(state);
    }
}

/// The aggregated, already `1/P`-averaged model update.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Dense update (the S-SGD baseline).
    Dense(Vec<f32>),
    /// Sparse update (all sparsified variants).
    Sparse(SparseVec),
}

impl Update {
    /// Number of non-zero entries the update carries.
    pub fn nnz(&self) -> usize {
        match self {
            Update::Dense(v) => v.len(),
            Update::Sparse(sv) => sv.nnz(),
        }
    }
}

/// A distributed gradient aggregation strategy.
pub trait GradientAggregator: Send {
    /// Algorithm name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Aggregates this iteration's gradient across `members` (the
    /// sorted, alive rank set — the full `0..P` outside the
    /// fault-tolerant loop).
    ///
    /// On entry, `residual` holds the error feedback carried over from
    /// previous iterations and `grad` this iteration's fresh gradient.
    /// The aggregator folds `grad` into the residual (Algorithm 1/4,
    /// line 4 — fused with selection into a single memory pass where the
    /// selector allows), extracts its share, communicates, returns
    /// rejected values to `residual`, and yields the update averaged
    /// over `|members|`. Must be called collectively by every member.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the communicator.
    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update>;

    /// The aggregator's local-selection state, when it owns one that has
    /// been materialized. Durable checkpoints persist this at process
    /// granularity so that a restarted rank resumes the sampled kernels'
    /// RNG streams bit-exactly. The dense baseline has no selection
    /// state and keeps the default.
    fn selector_state(&self) -> Option<&SelectorState> {
        None
    }

    /// Restores state captured via
    /// [`GradientAggregator::selector_state`] after a process restart.
    /// No-op for aggregators without selection state.
    fn restore_selector_state(&mut self, _state: SelectorState) {}
}

/// Expands the selector-state capture/restore pair for aggregators that
/// hold a [`LocalSelect`].
macro_rules! selector_state_passthrough {
    () => {
        fn selector_state(&self) -> Option<&SelectorState> {
            self.select.state()
        }

        fn restore_selector_state(&mut self, state: SelectorState) {
            self.select.restore(state);
        }
    };
}

/// Generates the `new`/`with_selector` constructor pair every
/// selector-driven aggregator shares; extra fields (e.g. the collective
/// topology) come from `Default`.
macro_rules! selector_ctors {
    ($ty:ident, $what:literal) => {
        impl $ty {
            #[doc = concat!("Creates the ", $what, " aggregator (exact selection).")]
            pub fn new() -> Self {
                Self::with_selector(Selector::Exact)
            }

            #[doc = concat!("Creates the ", $what, " aggregator with an explicit \
                             local selection kernel.")]
            // The update is a no-op for the single-field aggregators the
            // macro also expands for.
            #[allow(clippy::needless_update)]
            pub fn with_selector(selector: Selector) -> Self {
                Self {
                    select: LocalSelect::new(selector),
                    ..Self::default()
                }
            }
        }
    };
}

/// Generates the topology builder for aggregators whose collective is a
/// plan execution.
macro_rules! topology_builder {
    ($ty:ident) => {
        impl $ty {
            /// Same aggregator, different collective plan topology.
            #[must_use]
            pub fn with_topology(mut self, topology: Topology) -> Self {
                self.topology = topology;
                self
            }
        }
    };
}

/// The AllGather-style baselines run over the fixed full-cluster
/// schedules; a shrunken membership would need the plan-driven variants.
fn require_full_membership(comm: &Communicator, members: &[usize], name: &str) {
    assert_eq!(
        members.len(),
        comm.size(),
        "{name} aggregation supports full membership only"
    );
}

/// Which aggregation algorithm to run — the experiment configuration
/// enum used across the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Dense S-SGD over ring AllReduce.
    Dense,
    /// Top-k S-SGD over the AllGather-equivalent sparse sum (Alg. 1).
    TopK,
    /// gTop-k S-SGD over gTopKAllReduce (Alg. 4, the paper's method).
    GTopK,
    /// gTop-k with the exact sparse sum (Alg. 2; reference).
    NaiveGTopK,
    /// gTop-k with per-merge rejection feedback (our extension).
    GTopKFeedback,
    /// Ablation: gTop-k *without* the residual put-back of Algorithm 4
    /// line 10 — the configuration §III-A warns "could damage the model
    /// convergence". Exists to demonstrate that claim.
    GTopKNoPutback,
    /// Ok-Topk (Li & Hoefler, PPoPP'22): equal `⌈k/P⌉` per-rank
    /// contribution quotas, balanced split-and-aggregate rounds and a
    /// region gather — per-rank volume `O(k)` with no `log P` factor.
    OkTopk,
    /// SparDL (Duan et al.): Spar-Reduce-Scatter with cascading holding
    /// budgets and Spar-All-Gather of the surviving regions — no dense
    /// allgather tail.
    SparDl,
}

impl Algorithm {
    /// All algorithms used in experiments, in presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Dense,
        Algorithm::TopK,
        Algorithm::GTopK,
        Algorithm::NaiveGTopK,
        Algorithm::GTopKFeedback,
        Algorithm::GTopKNoPutback,
        Algorithm::OkTopk,
        Algorithm::SparDl,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Dense => "Dense",
            Algorithm::TopK => "Top-k",
            Algorithm::GTopK => "gTop-k",
            Algorithm::NaiveGTopK => "gTop-k(naive)",
            Algorithm::GTopKFeedback => "gTop-k(feedback)",
            Algorithm::GTopKNoPutback => "gTop-k(no-putback)",
            Algorithm::OkTopk => "Ok-Topk",
            Algorithm::SparDl => "SparDL",
        }
    }

    /// Whether the algorithm's collective is a plan execution that can
    /// run on any [`Topology`] (the gTop-k tree variants). The others
    /// have fixed schedules — ring for dense, recursive doubling /
    /// AllGather for the k-sparse sums — and accept only the default.
    pub fn supports_topology(&self) -> bool {
        matches!(
            self,
            Algorithm::GTopK | Algorithm::GTopKFeedback | Algorithm::GTopKNoPutback
        )
    }

    /// Instantiates the corresponding aggregator with the exact
    /// selection kernel.
    pub fn aggregator(&self) -> Box<dyn GradientAggregator> {
        self.aggregator_with(Selector::Exact)
    }

    /// Instantiates the corresponding aggregator with an explicit local
    /// top-k selection kernel (ignored by the dense baseline).
    pub fn aggregator_with(&self, selector: Selector) -> Box<dyn GradientAggregator> {
        self.aggregator_with_topology(selector, Topology::Binomial)
    }

    /// Instantiates the corresponding aggregator with an explicit
    /// selection kernel *and* collective topology.
    ///
    /// # Panics
    ///
    /// Panics if `topology` is not [`Topology::Binomial`] and the
    /// algorithm's collective is not plan-driven (see
    /// [`Algorithm::supports_topology`]).
    pub fn aggregator_with_topology(
        &self,
        selector: Selector,
        topology: Topology,
    ) -> Box<dyn GradientAggregator> {
        assert!(
            topology == Topology::Binomial || self.supports_topology(),
            "{} has a fixed collective schedule; only the binomial topology applies",
            self.name()
        );
        match self {
            Algorithm::Dense => Box::new(DenseAggregator::new()),
            Algorithm::TopK => Box::new(TopkAggregator::with_selector(selector)),
            Algorithm::GTopK => {
                Box::new(GtopkAggregator::with_selector(selector).with_topology(topology))
            }
            Algorithm::NaiveGTopK => Box::new(NaiveGtopkAggregator::with_selector(selector)),
            Algorithm::GTopKFeedback => {
                Box::new(GtopkFeedbackAggregator::with_selector(selector).with_topology(topology))
            }
            Algorithm::GTopKNoPutback => {
                Box::new(GtopkNoPutbackAggregator::with_selector(selector).with_topology(topology))
            }
            // Ok-Topk's native local selection is the sampling-based
            // threshold estimate (bitwise identical to the exact kernel),
            // so the generic exact default maps onto it; an explicitly
            // sampled/threshold selector is honored as configured.
            Algorithm::OkTopk => Box::new(match selector {
                Selector::Exact => OkTopkAggregator::new(),
                other => OkTopkAggregator::with_selector(other),
            }),
            Algorithm::SparDl => Box::new(SparDlAggregator::with_selector(selector)),
        }
    }
}

/// Dense S-SGD: ring AllReduce of the full gradient (paper §II-D).
///
/// The residual buffer is drained completely (dense training has no
/// residuals — every gradient is applied immediately).
#[derive(Debug, Default)]
pub struct DenseAggregator;

impl DenseAggregator {
    /// Creates the dense baseline aggregator.
    pub fn new() -> Self {
        DenseAggregator
    }
}

impl GradientAggregator for DenseAggregator {
    fn name(&self) -> &'static str {
        "Dense"
    }

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        _k: usize,
    ) -> Result<Update> {
        require_full_membership(comm, members, "Dense");
        residual.accumulate(grad);
        let mut grad = residual.dense().to_vec();
        residual.clear();
        collectives::allreduce_ring(comm, &mut grad)?;
        let inv = 1.0 / comm.size() as f32;
        grad.iter_mut().for_each(|v| *v *= inv);
        Ok(Update::Dense(grad))
    }
}

/// Top-k S-SGD (paper **Algorithm 1**): local top-k extraction, exact
/// sparse sum across ranks (`O(kP)` — the AllGather-equivalent), dense
/// application of the whole summed result.
///
/// Every extracted coordinate is represented in the global sum, so no
/// put-back is needed beyond what stays in the residual.
#[derive(Debug, Default)]
pub struct TopkAggregator {
    select: LocalSelect,
}

selector_ctors!(TopkAggregator, "Top-k baseline");

impl GradientAggregator for TopkAggregator {
    fn name(&self) -> &'static str {
        "Top-k"
    }

    selector_state_passthrough!();

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update> {
        require_full_membership(comm, members, "Top-k");
        let local = self.select.accumulate_extract(comm, residual, grad, k);
        let mut sum = sparse_sum_recursive_doubling(comm, local)?;
        sum.scale(1.0 / comm.size() as f32);
        Ok(Update::Sparse(sum))
    }
}

/// gTop-k S-SGD (paper **Algorithm 4**): local top-k extraction,
/// gTopKAllReduce, and put-back of the locally-selected-but-globally-
/// rejected values (line 10).
#[derive(Debug, Default)]
pub struct GtopkAggregator {
    select: LocalSelect,
    topology: Topology,
}

selector_ctors!(GtopkAggregator, "gTop-k");
topology_builder!(GtopkAggregator);

impl GradientAggregator for GtopkAggregator {
    fn name(&self) -> &'static str {
        "gTop-k"
    }

    selector_state_passthrough!();

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update> {
        let local = self.select.accumulate_extract(comm, residual, grad, k);
        let tag_off = epoch_tag_offset(comm.epoch());
        let (mut global, gmask, tree_rejects) =
            gtopk_all_reduce_over(comm, members, local.clone(), k, tag_off, self.topology)?;
        comm.pool().put_sparse(tree_rejects);
        // Alg. 4 line 10: Gᵍ += G̃ᵍ ⊙ ¬gMask ⊙ Mask.
        let (_kept, rejected) = local.partition_by(&gmask);
        residual.put_back(&rejected);
        global.scale(1.0 / members.len() as f32);
        Ok(Update::Sparse(global))
    }
}

/// Algorithm 2 reference: exact sparse sum, then the true global top-k;
/// extracted values outside the global mask return to the residual.
#[derive(Debug, Default)]
pub struct NaiveGtopkAggregator {
    select: LocalSelect,
}

selector_ctors!(NaiveGtopkAggregator, "naive (AllGather-based) gTop-k");

impl GradientAggregator for NaiveGtopkAggregator {
    fn name(&self) -> &'static str {
        "gTop-k(naive)"
    }

    selector_state_passthrough!();

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update> {
        require_full_membership(comm, members, "gTop-k(naive)");
        let local = self.select.accumulate_extract(comm, residual, grad, k);
        let (mut global, gmask) = naive_gtopk_all_reduce(comm, local.clone(), k)?;
        let (_kept, rejected) = local.partition_by(&gmask);
        residual.put_back(&rejected);
        global.scale(1.0 / comm.size() as f32);
        Ok(Update::Sparse(global))
    }
}

/// Extension: gTop-k whose tree merges feed their truncated entries back
/// into the *receiving* rank's residual, so the sum of residuals plus the
/// applied update always equals the sum of all contributions (no silent
/// gradient loss at interior tree nodes — see `DESIGN.md` §5 item 2).
#[derive(Debug, Default)]
pub struct GtopkFeedbackAggregator {
    select: LocalSelect,
    topology: Topology,
}

selector_ctors!(GtopkFeedbackAggregator, "feedback-extension");
topology_builder!(GtopkFeedbackAggregator);

impl GradientAggregator for GtopkFeedbackAggregator {
    fn name(&self) -> &'static str {
        "gTop-k(feedback)"
    }

    selector_state_passthrough!();

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update> {
        let local = self.select.accumulate_extract(comm, residual, grad, k);
        let tag_off = epoch_tag_offset(comm.epoch());
        let (mut global, gmask, tree_rejects) =
            gtopk_all_reduce_over(comm, members, local.clone(), k, tag_off, self.topology)?;
        // Standard Alg. 4 put-back: our own values whose coordinate did
        // not survive globally. (Every owner does this, so coordinates
        // outside the global mask are fully restored across the cluster.)
        let (_kept, rejected) = local.partition_by(&gmask);
        residual.put_back(&rejected);
        // The loss case the plain algorithm misses: a coordinate *in*
        // the global mask whose contribution was truncated at an
        // interior tree merge — its owners believe it was applied, so
        // nobody restores it. The merging rank witnessed the truncation
        // and restores exactly that portion. (Rejects outside the mask
        // are covered by the owners' put-back above; restoring them here
        // too would double-count gradient mass.)
        let (lost_but_selected, _owner_covered) = tree_rejects.partition_by(&gmask);
        residual.put_back(&lost_but_selected);
        global.scale(1.0 / members.len() as f32);
        Ok(Update::Sparse(global))
    }
}

/// Ablation: gTop-k that silently drops globally-rejected values
/// instead of returning them to the residual (Algorithm 4 *without*
/// line 10). The paper's §III-A observation predicts degraded
/// convergence; `ext_putback_ablation` demonstrates it.
#[derive(Debug, Default)]
pub struct GtopkNoPutbackAggregator {
    select: LocalSelect,
    topology: Topology,
}

selector_ctors!(GtopkNoPutbackAggregator, "no-putback ablation");
topology_builder!(GtopkNoPutbackAggregator);

impl GradientAggregator for GtopkNoPutbackAggregator {
    fn name(&self) -> &'static str {
        "gTop-k(no-putback)"
    }

    selector_state_passthrough!();

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update> {
        let local = self.select.accumulate_extract(comm, residual, grad, k);
        let tag_off = epoch_tag_offset(comm.epoch());
        let (mut global, _gmask, tree_rejects) =
            gtopk_all_reduce_over(comm, members, local, k, tag_off, self.topology)?;
        comm.pool().put_sparse(tree_rejects);
        // Deliberately no residual put-back.
        global.scale(1.0 / members.len() as f32);
        Ok(Update::Sparse(global))
    }
}

/// Shared body of the zoo aggregators: (re)build the cached schedule for
/// the current `(P, k)`, extract the schedule's contribution quota into a
/// pooled vector (allocation-free for the exact and threshold-estimate
/// selectors), run the budget-padded collective, return the witnessed
/// rejects to this rank's residual, and average.
#[allow(clippy::too_many_arguments)]
fn zoo_aggregate(
    comm: &mut Communicator,
    members: &[usize],
    residual: &mut Residual,
    grad: &[f32],
    k: usize,
    select: &mut LocalSelect,
    cache: &mut Option<ZooSchedule>,
    build: fn(usize, usize) -> ZooSchedule,
) -> Result<Update> {
    let p = members.len();
    let sched = match cache {
        Some(s) if s.p == p && s.k == k => &*s,
        _ => &*cache.insert(build(p, k)),
    };
    let mut local = comm.pool().take_sparse(grad.len());
    select
        .state_for(comm)
        .accumulate_extract_into(residual, grad, sched.contrib_slots, &mut local);
    let tag_off = epoch_tag_offset(comm.epoch());
    let (mut global, rejects) = sparse_zoo_all_reduce_over(comm, members, local, sched, tag_off)?;
    // Witness-based put-back: whichever rank a budget forced to drop
    // entries returns exactly that dropped sum to its own residual, so
    // no gradient mass is lost anywhere in the collective.
    residual.put_back(&rejects);
    comm.pool().put_sparse(rejects);
    global.scale(1.0 / p as f32);
    Ok(Update::Sparse(global))
}

/// Ok-Topk S-SGD: equal `⌈k/P⌉` contribution quotas with a
/// sampling-based threshold-estimate local selection, balanced
/// split-and-aggregate rounds, and a gather of the per-region top
/// selections. Per-rank communication volume is `O(k)` — no `log P`
/// factor (contrast the gTop-k tree's `O(k log P)`).
#[derive(Debug, Default)]
pub struct OkTopkAggregator {
    select: LocalSelect,
    sched: Option<ZooSchedule>,
}

impl OkTopkAggregator {
    /// Creates the Ok-Topk aggregator with its native single-pass
    /// sampling-based threshold selection (bitwise identical to the
    /// exact kernel; only the selection cost is probabilistic).
    pub fn new() -> Self {
        Self::with_selector(Selector::ThresholdEstimate { sample: 256 })
    }

    /// Creates the Ok-Topk aggregator with an explicit local selection
    /// kernel.
    pub fn with_selector(selector: Selector) -> Self {
        OkTopkAggregator {
            select: LocalSelect::new(selector),
            sched: None,
        }
    }
}

impl GradientAggregator for OkTopkAggregator {
    fn name(&self) -> &'static str {
        "Ok-Topk"
    }

    selector_state_passthrough!();

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update> {
        zoo_aggregate(
            comm,
            members,
            residual,
            grad,
            k,
            &mut self.select,
            &mut self.sched,
            ZooSchedule::oktopk,
        )
    }
}

/// SparDL S-SGD: Spar-Reduce-Scatter with cascading `⌈h/2⌉` holding
/// budgets, then Spar-All-Gather of the surviving regions — the whole
/// tail stays sparse (no dense allgather), with every cascade
/// truncation witnessed back into the truncating rank's residual.
#[derive(Debug, Default)]
pub struct SparDlAggregator {
    select: LocalSelect,
    sched: Option<ZooSchedule>,
}

impl SparDlAggregator {
    /// Creates the SparDL aggregator (exact selection).
    pub fn new() -> Self {
        Self::with_selector(Selector::Exact)
    }

    /// Creates the SparDL aggregator with an explicit local selection
    /// kernel.
    pub fn with_selector(selector: Selector) -> Self {
        SparDlAggregator {
            select: LocalSelect::new(selector),
            sched: None,
        }
    }
}

impl GradientAggregator for SparDlAggregator {
    fn name(&self) -> &'static str {
        "SparDL"
    }

    selector_state_passthrough!();

    fn aggregate(
        &mut self,
        comm: &mut Communicator,
        members: &[usize],
        residual: &mut Residual,
        grad: &[f32],
        k: usize,
    ) -> Result<Update> {
        zoo_aggregate(
            comm,
            members,
            residual,
            grad,
            k,
            &mut self.select,
            &mut self.sched,
            ZooSchedule::spardl,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_comm::{Cluster, CostModel};

    fn worker_grad(r: usize, dim: usize) -> Vec<f32> {
        (0..dim)
            .map(|i| {
                let h = (i as u64 + 3)
                    .wrapping_mul(r as u64 + 17)
                    .wrapping_mul(0x2545_f491_4f6c_dd1d);
                ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    fn run_algorithm(alg: Algorithm, p: usize, dim: usize, k: usize) -> Vec<(Update, Vec<f32>)> {
        Cluster::new(p, CostModel::zero()).run(move |comm| {
            let mut agg = alg.aggregator();
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut residual = Residual::new(dim);
            let update = agg
                .aggregate(
                    comm,
                    &members,
                    &mut residual,
                    &worker_grad(comm.rank(), dim),
                    k,
                )
                .unwrap();
            (update, residual.dense().to_vec())
        })
    }

    #[test]
    fn all_algorithms_agree_across_ranks() {
        for alg in Algorithm::ALL {
            let out = run_algorithm(alg, 4, 32, 3);
            let first = &out[0].0;
            for (u, _) in &out {
                assert_eq!(u, first, "{}", alg.name());
            }
        }
    }

    #[test]
    fn plan_driven_algorithms_agree_on_every_topology() {
        for alg in Algorithm::ALL
            .into_iter()
            .filter(Algorithm::supports_topology)
        {
            for topology in Topology::ALL {
                let out = Cluster::new(5, CostModel::zero()).run(move |comm| {
                    let mut agg = alg.aggregator_with_topology(Selector::Exact, topology);
                    let members: Vec<usize> = (0..comm.size()).collect();
                    let mut residual = Residual::new(32);
                    agg.aggregate(
                        comm,
                        &members,
                        &mut residual,
                        &worker_grad(comm.rank(), 32),
                        3,
                    )
                    .unwrap()
                });
                for u in &out {
                    assert_eq!(u, &out[0], "{} over {topology}", alg.name());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "fixed collective schedule")]
    fn fixed_schedule_algorithms_reject_other_topologies() {
        let _ = Algorithm::Dense.aggregator_with_topology(Selector::Exact, Topology::Ring);
    }

    #[test]
    fn dense_aggregator_averages_exactly() {
        let p = 4;
        let dim = 16;
        let out = run_algorithm(Algorithm::Dense, p, dim, 0);
        let mut expect = vec![0.0f32; dim];
        for r in 0..p {
            for (e, g) in expect.iter_mut().zip(worker_grad(r, dim)) {
                *e += g / p as f32;
            }
        }
        match &out[0].0 {
            Update::Dense(v) => {
                for (a, b) in v.iter().zip(expect.iter()) {
                    assert!((a - b).abs() < 1e-5);
                }
            }
            other => panic!("expected dense update, got {other:?}"),
        }
        // Dense training leaves no residual.
        assert!(out[0].1.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn topk_update_covers_all_extracted_coordinates() {
        let p = 4;
        let k = 3;
        let out = run_algorithm(Algorithm::TopK, p, 40, k);
        match &out[0].0 {
            Update::Sparse(sv) => {
                // Between k and kP coordinates (the paper's K).
                assert!(sv.nnz() >= k && sv.nnz() <= k * p, "nnz = {}", sv.nnz());
            }
            other => panic!("expected sparse update, got {other:?}"),
        }
    }

    #[test]
    fn gtopk_update_has_at_most_k_coordinates() {
        for alg in [
            Algorithm::GTopK,
            Algorithm::NaiveGTopK,
            Algorithm::GTopKFeedback,
        ] {
            let out = run_algorithm(alg, 8, 64, 5);
            match &out[0].0 {
                Update::Sparse(sv) => assert!(sv.nnz() <= 5, "{}: {}", alg.name(), sv.nnz()),
                other => panic!("expected sparse update, got {other:?}"),
            }
        }
    }

    #[test]
    fn gtopk_put_back_restores_globally_rejected_values() {
        // With k=1 and disjoint supports, only one worker's coordinate
        // survives; the others must find their value back in the residual.
        let p = 4;
        let dim = 16;
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let mut agg = GtopkAggregator::new();
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut residual = Residual::new(dim);
            let mut g = vec![0.0f32; dim];
            g[comm.rank()] = 1.0 + comm.rank() as f32; // rank 3 wins
            let update = agg.aggregate(comm, &members, &mut residual, &g, 1).unwrap();
            (update, residual.dense().to_vec())
        });
        for (r, (update, residual)) in out.iter().enumerate() {
            match update {
                Update::Sparse(sv) => {
                    assert_eq!(sv.indices(), &[3]);
                    assert!((sv.get(3) - 4.0 / p as f32).abs() < 1e-6);
                }
                other => panic!("expected sparse, got {other:?}"),
            }
            if r != 3 {
                assert!(
                    (residual[r] - (1.0 + r as f32)).abs() < 1e-6,
                    "rank {r} residual {residual:?}"
                );
            } else {
                assert!(residual.iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn feedback_variant_never_leaves_less_residual_than_plain() {
        // The feedback extension can only add mass back to residuals.
        let p = 8;
        let dim = 64;
        let k = 2;
        let totals = |alg: Algorithm| -> f64 {
            run_algorithm(alg, p, dim, k)
                .iter()
                .map(|(_, res)| res.iter().map(|v| v.abs() as f64).sum::<f64>())
                .sum()
        };
        let plain = totals(Algorithm::GTopK);
        let feedback = totals(Algorithm::GTopKFeedback);
        assert!(
            feedback >= plain - 1e-6,
            "feedback {feedback} < plain {plain}"
        );
    }

    #[test]
    fn feedback_aggregator_conserves_gradient_mass_exactly() {
        // Each rank's gradient has exactly k non-zeros, so extraction
        // takes everything and the residual afterwards holds precisely
        // the put-backs. Conservation: sum of all contributed gradients
        // == P x (averaged update) + sum of all residuals.
        let p = 8usize;
        let dim = 32usize;
        let k = 2usize;
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let mut agg = GtopkFeedbackAggregator::new();
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut residual = Residual::new(dim);
            let r = comm.rank() as u32;
            let mut g = vec![0.0f32; dim];
            // Overlapping coordinate 0 plus a unique one per rank.
            g[0] = 0.5 + r as f32 * 0.1;
            g[(r + 1) as usize] = 1.0 + r as f32;
            let update = agg.aggregate(comm, &members, &mut residual, &g, k).unwrap();
            (g, update, residual.dense().to_vec())
        });
        let mut contributed = vec![0.0f64; dim];
        let mut recovered = vec![0.0f64; dim];
        for (r, (g, update, res)) in out.iter().enumerate() {
            for (c, &v) in contributed.iter_mut().zip(g.iter()) {
                *c += v as f64;
            }
            for (rec, &v) in recovered.iter_mut().zip(res.iter()) {
                *rec += v as f64;
            }
            if r == 0 {
                match update {
                    Update::Sparse(sv) => {
                        for (i, v) in sv.iter() {
                            recovered[i as usize] += v as f64 * p as f64;
                        }
                    }
                    other => panic!("expected sparse, got {other:?}"),
                }
            }
        }
        for i in 0..dim {
            assert!(
                (contributed[i] - recovered[i]).abs() < 1e-4,
                "coord {i}: contributed {} vs recovered {}",
                contributed[i],
                recovered[i]
            );
        }
    }

    #[test]
    fn plain_gtopk_drops_mass_in_the_loss_corner() {
        // The same accounting applied to the plain aggregator shows the
        // leak (coordinate proposed by two subtrees, truncated in one).
        let p = 4usize;
        let dim = 8usize;
        let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
            let mut agg = GtopkAggregator::new();
            let members: Vec<usize> = (0..comm.size()).collect();
            let mut residual = Residual::new(dim);
            let mut g = vec![0.0f32; dim];
            match comm.rank() {
                0 => g[1] = 1.0,
                1 => g[2] = 1.1,
                2 => g[1] = 5.0,
                _ => g[3] = 0.2,
            }
            let update = agg.aggregate(comm, &members, &mut residual, &g, 1).unwrap();
            (g, update, residual.dense().to_vec())
        });
        let mut contributed = 0.0f64;
        let mut recovered = 0.0f64;
        for (r, (g, update, res)) in out.iter().enumerate() {
            contributed += g.iter().map(|&v| v as f64).sum::<f64>();
            recovered += res.iter().map(|&v| v as f64).sum::<f64>();
            if r == 0 {
                if let Update::Sparse(sv) = update {
                    recovered += sv.values().iter().map(|&v| v as f64).sum::<f64>() * p as f64;
                }
            }
        }
        // Worker 0's 1.0 on coordinate 1 vanished (truncated at an
        // interior merge while coordinate 1 still won globally).
        assert!(
            (contributed - recovered - 1.0).abs() < 1e-5,
            "expected exactly 1.0 lost: contributed {contributed} recovered {recovered}"
        );
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::ALL.len(), 8);
        assert_eq!(Algorithm::GTopK.name(), "gTop-k");
        assert_eq!(Algorithm::OkTopk.name(), "Ok-Topk");
        assert_eq!(Algorithm::SparDl.name(), "SparDL");
        assert!(Algorithm::GTopK.supports_topology());
        assert!(!Algorithm::Dense.supports_topology());
        assert!(!Algorithm::NaiveGTopK.supports_topology());
        assert!(!Algorithm::OkTopk.supports_topology());
        assert!(!Algorithm::SparDl.supports_topology());
        for alg in Algorithm::ALL {
            assert_eq!(alg.aggregator().name(), alg.name());
        }
    }

    #[test]
    fn zoo_aggregators_conserve_gradient_mass_exactly() {
        // Same accounting as the feedback aggregator: sum of all
        // contributed gradients == P x (averaged update) + sum of all
        // residuals — here it must hold even though the zoo budgets can
        // drop entries mid-collective, because every drop is witnessed
        // back into the dropping rank's residual.
        for alg in [Algorithm::OkTopk, Algorithm::SparDl] {
            let p = 8usize;
            let dim = 32usize;
            let k = 4usize;
            let out = Cluster::new(p, CostModel::zero()).run(move |comm| {
                let mut agg = alg.aggregator();
                let members: Vec<usize> = (0..comm.size()).collect();
                let mut residual = Residual::new(dim);
                let g = worker_grad(comm.rank(), dim);
                let update = agg.aggregate(comm, &members, &mut residual, &g, k).unwrap();
                (g, update, residual.dense().to_vec())
            });
            let mut contributed = vec![0.0f64; dim];
            let mut recovered = vec![0.0f64; dim];
            for (r, (g, update, res)) in out.iter().enumerate() {
                for (c, &v) in contributed.iter_mut().zip(g.iter()) {
                    *c += v as f64;
                }
                for (rec, &v) in recovered.iter_mut().zip(res.iter()) {
                    *rec += v as f64;
                }
                if r == 0 {
                    match update {
                        Update::Sparse(sv) => {
                            for (i, v) in sv.iter() {
                                recovered[i as usize] += v as f64 * p as f64;
                            }
                        }
                        other => panic!("expected sparse, got {other:?}"),
                    }
                }
            }
            for i in 0..dim {
                assert!(
                    (contributed[i] - recovered[i]).abs() < 1e-4,
                    "{} coord {i}: contributed {} vs recovered {}",
                    alg.name(),
                    contributed[i],
                    recovered[i]
                );
            }
        }
    }

    #[test]
    fn zoo_update_respects_schedule_budget() {
        for (alg, sched_of) in [
            (
                Algorithm::OkTopk,
                ZooSchedule::oktopk as fn(usize, usize) -> ZooSchedule,
            ),
            (Algorithm::SparDl, ZooSchedule::spardl),
        ] {
            let p = 8usize;
            let k = 5usize;
            let sched = sched_of(p, k);
            let cap = sched.region_slots * 8; // p2 regions
            let out = run_algorithm(alg, p, 64, k);
            match &out[0].0 {
                Update::Sparse(sv) => {
                    assert!(sv.nnz() <= cap, "{}: {} > {cap}", alg.name(), sv.nnz());
                }
                other => panic!("expected sparse update, got {other:?}"),
            }
        }
    }
}
