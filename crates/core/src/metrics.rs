//! Training metrics: per-epoch records and per-phase time breakdown.

use crate::overlap::OverlapStats;
use gtopk_comm::LinkStats;

/// Per-iteration time breakdown in simulated milliseconds — the
/// decomposition of the paper's Fig. 11 (computation, compression,
/// communication).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingBreakdown {
    /// Forward + backward compute time.
    pub compute_ms: f64,
    /// Sparsification (top-k selection) time.
    pub compression_ms: f64,
    /// Gradient aggregation communication time.
    pub communication_ms: f64,
    /// Failure-recovery time: revokes, survivor agreement, and rollback
    /// after a membership change (zero in fault-free runs).
    pub recovery_ms: f64,
    /// Iterations accumulated into this breakdown (including iterations
    /// replayed after a rollback).
    pub iterations: usize,
    /// Number of shrink-and-continue recoveries performed.
    pub recoveries: usize,
}

impl TimingBreakdown {
    /// Total time across phases (including recovery).
    pub fn total_ms(&self) -> f64 {
        self.compute_ms + self.compression_ms + self.communication_ms + self.recovery_ms
    }

    /// Per-iteration averages `(compute, compression, communication)`.
    ///
    /// # Panics
    ///
    /// Panics if no iterations were recorded.
    pub fn per_iteration(&self) -> (f64, f64, f64) {
        assert!(self.iterations > 0, "no iterations recorded");
        let n = self.iterations as f64;
        (
            self.compute_ms / n,
            self.compression_ms / n,
            self.communication_ms / n,
        )
    }

    /// Phase fractions `(compute, compression, communication)` of the
    /// total. They sum to 1 in a fault-free run; under faults the
    /// remainder up to 1 is the recovery fraction. Zeros if the total is
    /// zero.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total_ms();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.compute_ms / t,
            self.compression_ms / t,
            self.communication_ms / t,
        )
    }
}

/// One epoch of training, averaged across workers.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch, averaged across workers.
    pub train_loss: f64,
    /// Top-1 accuracy on the evaluation set, if one was supplied.
    pub eval_accuracy: Option<f64>,
    /// Gradient density in force this epoch.
    pub density: f64,
}

/// The result of a distributed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Algorithm name (paper notation).
    pub algorithm: &'static str,
    /// Number of workers.
    pub workers: usize,
    /// Epoch-by-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Accumulated time breakdown (rank 0's view).
    pub timing: TimingBreakdown,
    /// Total simulated wall-clock (rank 0), ms.
    pub sim_time_ms: f64,
    /// Total elements sent by the reporting rank (rank 0 in fault-free
    /// runs, the lowest surviving rank otherwise) — the
    /// communication-volume check.
    pub elems_sent_rank0: usize,
    /// Messages retransmitted by the reporting rank after simulated
    /// drops (0 in fault-free runs).
    pub retransmissions: usize,
    /// Per-link failure counters of the reporting rank: one entry per
    /// peer that saw retransmissions or timeouts (empty in clean runs).
    /// On a real network this pinpoints *which* link misbehaved.
    pub link_stats: Vec<LinkStats>,
    /// Ranks still alive at the end of the run (equals `workers` in
    /// fault-free runs; smaller after shrink-and-continue).
    pub survivors: usize,
    /// Mean non-zero count of the applied global update — the paper's
    /// §III-A quantity `K` for Top-k S-SGD (`k ≤ K ≤ k·P`, measuring how
    /// much worker gradient supports overlap), exactly `k` for gTop-k,
    /// and `m` for dense.
    pub mean_update_nnz: f64,
    /// Buffer-pool requests the reporting rank served without
    /// allocating. At steady state every send/recv-path buffer comes
    /// from the pool, so hits grow with iterations while…
    pub pool_hits_rank0: u64,
    /// …misses (requests that had to allocate) stay flat after the
    /// warmup iterations — the zero-allocation hot-path check.
    pub pool_misses_rank0: u64,
    /// Executed-overlap schedule statistics (rank 0's view), present
    /// when the run used the overlap engine.
    pub overlap: Option<OverlapStats>,
}

impl TrainReport {
    /// Final training loss.
    ///
    /// # Panics
    ///
    /// Panics if the run recorded no epochs.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().expect("at least one epoch").train_loss
    }

    /// Final evaluation accuracy, if evaluation ran.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.eval_accuracy)
    }

    /// Throughput in samples/second given per-worker batch size, using
    /// simulated time.
    ///
    /// # Panics
    ///
    /// Panics if no simulated time elapsed.
    pub fn throughput(&self, batch_per_worker: usize) -> f64 {
        assert!(self.sim_time_ms > 0.0, "no simulated time elapsed");
        let samples = (self.timing.iterations * batch_per_worker * self.workers) as f64;
        samples / (self.sim_time_ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_and_averages() {
        let b = TimingBreakdown {
            compute_ms: 60.0,
            compression_ms: 20.0,
            communication_ms: 20.0,
            recovery_ms: 0.0,
            iterations: 10,
            recoveries: 0,
        };
        assert_eq!(b.total_ms(), 100.0);
        assert_eq!(b.per_iteration(), (6.0, 2.0, 2.0));
        let (c, z, m) = b.fractions();
        assert!((c - 0.6).abs() < 1e-12 && (z - 0.2).abs() < 1e-12 && (m - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        assert_eq!(TimingBreakdown::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn report_accessors() {
        let report = TrainReport {
            algorithm: "gTop-k",
            workers: 4,
            epochs: vec![
                EpochRecord {
                    epoch: 0,
                    train_loss: 2.0,
                    eval_accuracy: None,
                    density: 0.25,
                },
                EpochRecord {
                    epoch: 1,
                    train_loss: 1.0,
                    eval_accuracy: Some(0.8),
                    density: 0.001,
                },
            ],
            timing: TimingBreakdown {
                compute_ms: 0.0,
                compression_ms: 0.0,
                communication_ms: 0.0,
                recovery_ms: 0.0,
                iterations: 100,
                recoveries: 0,
            },
            sim_time_ms: 1000.0,
            elems_sent_rank0: 1234,
            retransmissions: 0,
            link_stats: Vec::new(),
            survivors: 4,
            mean_update_nnz: 10.0,
            pool_hits_rank0: 0,
            pool_misses_rank0: 0,
            overlap: None,
        };
        assert_eq!(report.final_loss(), 1.0);
        assert_eq!(report.final_accuracy(), Some(0.8));
        // 100 iters × 8 samples × 4 workers / 1 s
        assert_eq!(report.throughput(8), 3200.0);
    }
}
