//! # gtopk — global Top-k sparsification for distributed synchronous SGD
//!
//! This crate is the core contribution of the reproduced paper,
//! *"A Distributed Synchronous SGD Algorithm with Global Top-k
//! Sparsification for Low Bandwidth Networks"* (Shi et al., ICDCS 2019):
//!
//! * [`gtopk_all_reduce`] — **Algorithm 3**: a binomial-tree reduction of
//!   k-sparse gradients under the top-k merge operator `⊤` (Definition 1),
//!   followed by a tree broadcast of the global result, at `O(k log P)`
//!   communication cost;
//! * [`naive_gtopk_all_reduce`] — **Algorithm 2**: the AllGather-style
//!   reference that selects the true top-k of the exact sparse sum (used
//!   to illustrate the idea in the paper, and here to cross-validate the
//!   tree version);
//! * [`GradientAggregator`] implementations for the three S-SGD variants
//!   the paper evaluates — [`DenseAggregator`] (ring AllReduce),
//!   [`TopkAggregator`] (AllGather-equivalent sparse sum, `O(kP)`), and
//!   [`GtopkAggregator`] — plus [`GtopkFeedbackAggregator`], an extension
//!   that recycles tree-merge rejections into the receiver's residual so
//!   no gradient mass is ever dropped (see `DESIGN.md` §5);
//! * [`DensitySchedule`] / [`LrSchedule`] — the warmup schedules of
//!   §IV-B ([0.25, 0.0725, 0.015, 0.004] densities in the first epochs);
//! * [`train_distributed`] — the full gTop-k S-SGD training loop
//!   (**Algorithm 4**) and its Dense/Top-k baselines over the simulated
//!   cluster, with per-phase time breakdown (compute / compression /
//!   communication, Fig. 11).
//!
//! # Examples
//!
//! Aggregate sparse gradients across 4 simulated workers:
//!
//! ```
//! use gtopk::gtopk_all_reduce;
//! use gtopk_comm::{Cluster, CostModel};
//! use gtopk_sparse::topk_sparse;
//!
//! let cluster = Cluster::new(4, CostModel::gigabit_ethernet());
//! let results = cluster.run(|comm| {
//!     // Each worker has a different dense gradient; keep top-2 locally.
//!     let mut g = vec![0.0f32; 16];
//!     g[comm.rank()] = 1.0 + comm.rank() as f32;
//!     g[15] = 10.0; // every worker agrees coordinate 15 is large
//!     let local = topk_sparse(&g, 2);
//!     gtopk_all_reduce(comm, local, 2).unwrap()
//! });
//! for (global, mask) in &results {
//!     assert_eq!(global.nnz(), 2);
//!     assert!(mask.contains(15)); // the shared heavy coordinate survives
//!     assert!((global.get(15) - 40.0).abs() < 1e-5); // 4 workers × 10.0
//! }
//! ```

#![warn(missing_docs)]

mod aggregator;
pub mod ckpt;
pub mod ft;
mod gtopk_allreduce;
mod metrics;
mod orchestrator;
pub mod overlap;
pub mod pipeline;
pub mod ps;
mod schedule;
mod selector;
mod sparse_coll;
mod trainer;

pub use aggregator::{
    Algorithm, DenseAggregator, GradientAggregator, GtopkAggregator, GtopkFeedbackAggregator,
    GtopkNoPutbackAggregator, NaiveGtopkAggregator, OkTopkAggregator, SparDlAggregator,
    TopkAggregator, Update,
};
pub use ckpt::{CheckpointStore, CkptError, DurableCheckpoint, EngineState, SelectorDump};
pub use ft::{
    ft_gtopk_all_reduce, ft_gtopk_all_reduce_with_feedback, recover, Recovery, EPOCH_TAG_STRIDE,
};
pub use gtopk_allreduce::{
    gtopk_all_reduce, gtopk_all_reduce_over, gtopk_all_reduce_topo, gtopk_all_reduce_with_feedback,
    naive_gtopk_all_reduce,
};
pub use gtopk_comm::{LinkStats, Topology};
pub use metrics::{EpochRecord, TimingBreakdown, TrainReport};
pub use orchestrator::{JobEvent, JobRecord, JobSpec, Orchestrator, OrchestratorReport};
pub use overlap::{
    backward_layer_costs, BucketSpec, OverlapConfig, OverlapEngine, OverlapSnapshot, OverlapStats,
};
pub use ps::{ps_pull_round, ps_push_round, PsConfig, PsEngine, PsVariant};
pub use schedule::{DensitySchedule, LrSchedule};
pub use selector::{Selector, SelectorState};
pub use sparse_coll::{
    ok_topk_all_reduce, spardl_all_reduce, sparse_broadcast, sparse_sum_recursive_doubling,
    sparse_zoo_all_reduce_over,
};
pub use trainer::{train_distributed, train_rank, ComputeCost, TrainConfig};
