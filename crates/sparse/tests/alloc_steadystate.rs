//! Steady-state allocation accounting for the selection hot path.
//!
//! The `TopkScratch` discipline promises that once buffers are warm,
//! per-step selection performs **zero** heap allocation — the analogue of
//! the `BufferPool` steady-state test on the comm side, but enforced at
//! the allocator itself: a counting `#[global_allocator]` wrapper
//! measures an entire warmed epoch and demands exactly zero calls.
//!
//! This lives in its own integration binary so no concurrently-running
//! test can allocate into the measurement window. The counter is
//! *thread-local*: libtest's harness threads (result channels, output
//! printing) allocate at unpredictable moments, so a process-global
//! count would flake whenever one test finishes while another measures —
//! each `#[test]` only ever counts its own thread's allocations.

use gtopk_sparse::{Residual, SparseVec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper that counts every allocation entry point
/// made by the current thread.
struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Bumps the calling thread's counter; `try_with` sidesteps the TLS
/// teardown window where the key is no longer accessible.
fn count_one() {
    let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.with(Cell::get)
}

/// Deterministic gradient stream (same content on the warm-up epoch and
/// the measured epoch, so buffer high-water marks are already reached).
fn grad_epoch(n: usize, steps: usize) -> Vec<Vec<f32>> {
    (0..steps)
        .map(|s| {
            (0..n)
                .map(|i| {
                    let h = (i as u64 + 3)
                        .wrapping_mul(s as u64 + 17)
                        .wrapping_mul(0x2545_f491_4f6c_dd1d);
                    ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                })
                .collect()
        })
        .collect()
}

/// Runs one epoch of the unfused estimate path over warmed state.
fn run_unfused(r: &mut Residual, grads: &[Vec<f32>], k: usize, out: &mut SparseVec) {
    let mut rng = StdRng::seed_from_u64(42);
    for g in grads {
        r.accumulate(g);
        r.extract_topk_threshold_into(k, 128, &mut rng, out);
    }
}

/// Runs one epoch of the fused accumulate+select+compact path.
fn run_fused(r: &mut Residual, grads: &[Vec<f32>], k: usize, out: &mut SparseVec) {
    let mut rng = StdRng::seed_from_u64(42);
    for g in grads {
        r.accumulate_extract_threshold_into(g, k, 128, &mut rng, out);
    }
}

#[test]
fn threshold_estimate_path_allocates_nothing_at_steady_state() {
    let n = 8192;
    let k = 96;
    let grads = grad_epoch(n, 12);
    let mut r = Residual::new(n);
    let mut out = SparseVec::empty(n);
    // Warm-up epoch: identical call sequence (same seed, same gradients),
    // so every scratch buffer reaches its epoch high-water capacity.
    run_unfused(&mut r, &grads, k, &mut out);
    r.clear();
    let before = alloc_calls();
    run_unfused(&mut r, &grads, k, &mut out);
    let allocs = alloc_calls() - before;
    assert_eq!(allocs, 0, "steady-state estimate epoch allocated {allocs}x");
}

/// One epoch of the Ok-Topk local selection discipline: fused
/// accumulate+threshold-select of the k-entry candidate set, split off
/// the over-budget tail (the entries the collective's per-round quotas
/// would drop), and witness it back into the residual.
fn run_oktopk(
    r: &mut Residual,
    grads: &[Vec<f32>],
    k: usize,
    out: &mut SparseVec,
    keep: &mut SparseVec,
    rej: &mut SparseVec,
) {
    let mut rng = StdRng::seed_from_u64(42);
    for g in grads {
        r.accumulate_extract_threshold_into(g, k, 128, &mut rng, out);
        // Boundary split stands in for the budget truncation: the upper
        // index range plays the witnessed rejects put back each step.
        out.split_at_into(out.dim() as u32 / 2, keep, rej);
        r.put_back(rej);
    }
}

#[test]
fn oktopk_selection_epoch_allocates_nothing_at_steady_state() {
    let n = 8192;
    let k = 96;
    let grads = grad_epoch(n, 12);
    let mut r = Residual::new(n);
    let mut out = SparseVec::empty(n);
    let mut keep = SparseVec::empty(n);
    let mut rej = SparseVec::empty(n);
    run_oktopk(&mut r, &grads, k, &mut out, &mut keep, &mut rej);
    r.clear();
    let before = alloc_calls();
    run_oktopk(&mut r, &grads, k, &mut out, &mut keep, &mut rej);
    let allocs = alloc_calls() - before;
    assert_eq!(allocs, 0, "steady-state Ok-Topk epoch allocated {allocs}x");
}

#[test]
fn fused_path_allocates_nothing_at_steady_state() {
    let n = 8192;
    let k = 96;
    let grads = grad_epoch(n, 12);
    let mut r = Residual::new(n);
    let mut out = SparseVec::empty(n);
    run_fused(&mut r, &grads, k, &mut out);
    r.clear();
    let before = alloc_calls();
    run_fused(&mut r, &grads, k, &mut out);
    let allocs = alloc_calls() - before;
    assert_eq!(allocs, 0, "steady-state fused epoch allocated {allocs}x");
}
