//! Error-feedback residual accumulator (paper Algorithms 1/2/4).
//!
//! Every worker keeps a dense buffer `G` into which each iteration's fresh
//! stochastic gradient is accumulated (line 4: `Gᵢ = Gᵢ₋₁ + ∇L`). Top-k
//! extraction removes the selected coordinates from the buffer (line 8
//! stores `¬Mask ⊙ G` as residual); coordinates rejected by the *global*
//! selection are put back (Algorithm 4, line 10) so no gradient mass is
//! ever silently dropped — only delayed.

use crate::topk::{
    accumulate_select_compact, sampled_topk_sparse, threshold_estimate_topk_into,
    topk_indices_into, topk_sparse_into, TopkScratch,
};
use crate::SparseVec;
use gtopk_tensor::simd;
use rand::Rng;
use std::ops::Range;

/// Dense error-feedback buffer with top-k extraction.
///
/// # Examples
///
/// ```
/// use gtopk_sparse::Residual;
/// let mut r = Residual::new(4);
/// r.accumulate(&[1.0, -3.0, 0.5, 2.0]);
/// let top = r.extract_topk(2); // takes coordinates 1 and 3
/// assert_eq!(top.indices(), &[1, 3]);
/// // The extracted mass left the buffer; the rest stayed.
/// assert_eq!(r.dense(), &[1.0, 0.0, 0.5, 0.0]);
/// // A globally-rejected coordinate can be returned:
/// r.put_back(&top);
/// assert_eq!(r.dense(), &[1.0, -3.0, 0.5, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Residual {
    acc: Vec<f32>,
    /// Reused top-k selection buffers — extraction is O(dim) scratch that
    /// would otherwise be reallocated every training step.
    scratch: TopkScratch,
}

/// Equality is over the gradient content only; scratch buffers are
/// transient state.
impl PartialEq for Residual {
    fn eq(&self, other: &Self) -> bool {
        self.acc == other.acc
    }
}

impl Residual {
    /// A zeroed residual buffer of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Residual {
            acc: vec![0.0; dim],
            scratch: TopkScratch::new(),
        }
    }

    /// Buffer dimension.
    pub fn dim(&self) -> usize {
        self.acc.len()
    }

    /// Adds a fresh gradient into the buffer (`G += grad`).
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != self.dim()`.
    pub fn accumulate(&mut self, grad: &[f32]) {
        assert_eq!(grad.len(), self.acc.len(), "gradient length mismatch");
        simd::axpy(&mut self.acc, grad);
    }

    /// Extracts the top-`k` coordinates by |value|, zeroing them in the
    /// buffer and returning them as a sparse vector.
    ///
    /// Selection scratch is reused across calls, so steady-state cost is
    /// the quickselect itself with no per-step allocation beyond the
    /// returned k-entry vector.
    pub fn extract_topk(&mut self, k: usize) -> SparseVec {
        let mut sv = SparseVec::empty(self.acc.len());
        self.extract_topk_into(k, &mut sv);
        sv
    }

    /// Like [`Residual::extract_topk`] but writing into a caller-supplied
    /// (typically pooled) vector — fully allocation-free in steady state.
    pub fn extract_topk_into(&mut self, k: usize, out: &mut SparseVec) {
        topk_sparse_into(&self.acc, k, &mut self.scratch, out);
        for &i in out.indices() {
            self.acc[i as usize] = 0.0;
        }
    }

    /// Extracts the top-`k` coordinates by |value| *within* the
    /// contiguous region `range`, zeroing them in the buffer. Returned
    /// indices are global (full-`dim`) coordinates, ascending.
    ///
    /// Exactly `min(k, range.len())` entries are extracted — when the
    /// region holds fewer than `k` nonzeros, zero-valued coordinates pad
    /// the selection — so the result's nnz is a *static* function of
    /// `(range, k)`, never of gradient content. With `range == 0..dim`
    /// this is bitwise identical to [`Residual::extract_topk`]. This is
    /// the stratified per-shard selection of the parameter-server push
    /// path.
    pub fn extract_topk_range(&mut self, range: Range<usize>, k: usize) -> SparseVec {
        let mut sv = SparseVec::empty(self.acc.len());
        self.extract_topk_range_into(range, k, &mut sv);
        sv
    }

    /// Like [`Residual::extract_topk_range`] but writing into a
    /// caller-supplied vector — allocation-free in steady state.
    pub fn extract_topk_range_into(&mut self, range: Range<usize>, k: usize, out: &mut SparseVec) {
        let start = range.start as u32;
        out.dim = self.acc.len();
        let mut indices = std::mem::take(&mut out.indices);
        topk_indices_into(&self.acc[range], k, &mut self.scratch, &mut indices);
        for i in indices.iter_mut() {
            *i += start;
        }
        out.values.clear();
        out.values
            .extend(indices.iter().map(|&i| self.acc[i as usize]));
        out.indices = indices;
        for &i in out.indices() {
            self.acc[i as usize] = 0.0;
        }
    }

    /// Like [`Residual::extract_topk`] but using the sampling-estimated
    /// threshold kernel with exact-`k` fixup — the result is bitwise
    /// identical to [`Residual::extract_topk`], only the selection cost is
    /// probabilistic (an O(dim) single pass in the common case).
    pub fn extract_topk_threshold(
        &mut self,
        k: usize,
        sample: usize,
        rng: &mut impl Rng,
    ) -> SparseVec {
        let mut sv = SparseVec::empty(self.acc.len());
        self.extract_topk_threshold_into(k, sample, rng, &mut sv);
        sv
    }

    /// Like [`Residual::extract_topk_threshold`] but writing into a
    /// caller-supplied vector — fully allocation-free in steady state.
    /// Returns the candidate count the select examined.
    pub fn extract_topk_threshold_into(
        &mut self,
        k: usize,
        sample: usize,
        rng: &mut impl Rng,
        out: &mut SparseVec,
    ) -> usize {
        let examined =
            threshold_estimate_topk_into(&self.acc, k, sample, rng, &mut self.scratch, out);
        for &i in out.indices() {
            self.acc[i as usize] = 0.0;
        }
        examined
    }

    /// Fused accumulate + threshold extraction: `G += grad` and the
    /// top-`k` extraction of [`Residual::extract_topk_threshold`] in one
    /// memory pass over the buffer (see
    /// [`accumulate_select_compact`]). Bitwise identical — result,
    /// buffer state, and RNG consumption — to
    /// [`Residual::accumulate`] followed by
    /// [`Residual::extract_topk_threshold`].
    pub fn accumulate_extract_threshold(
        &mut self,
        grad: &[f32],
        k: usize,
        sample: usize,
        rng: &mut impl Rng,
    ) -> SparseVec {
        let mut sv = SparseVec::empty(self.acc.len());
        self.accumulate_extract_threshold_into(grad, k, sample, rng, &mut sv);
        sv
    }

    /// Like [`Residual::accumulate_extract_threshold`] but writing into a
    /// caller-supplied vector — fully allocation-free in steady state.
    /// Returns the candidate count the select examined.
    pub fn accumulate_extract_threshold_into(
        &mut self,
        grad: &[f32],
        k: usize,
        sample: usize,
        rng: &mut impl Rng,
        out: &mut SparseVec,
    ) -> usize {
        accumulate_select_compact(&mut self.acc, grad, k, sample, rng, &mut self.scratch, out)
    }

    /// Like [`Residual::extract_topk`] but using the sampled-threshold
    /// selection kernel — exactly `min(k, dim)` coordinates are extracted.
    pub fn extract_topk_sampled(
        &mut self,
        k: usize,
        sample: usize,
        rng: &mut impl Rng,
    ) -> SparseVec {
        let sv = sampled_topk_sparse(&self.acc, k, sample, rng);
        for &i in sv.indices() {
            self.acc[i as usize] = 0.0;
        }
        sv
    }

    /// Returns previously extracted coordinates to the buffer
    /// (`G += rejected`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn put_back(&mut self, rejected: &SparseVec) {
        assert_eq!(rejected.dim(), self.acc.len(), "sparse dim mismatch");
        rejected.add_into_dense(&mut self.acc);
    }

    /// Immutable view of the dense buffer.
    pub fn dense(&self) -> &[f32] {
        &self.acc
    }

    /// Sum of |values| remaining in the buffer — the "delayed gradient
    /// mass" diagnostics used in tests and experiment logs.
    pub fn l1(&self) -> f32 {
        self.acc.iter().map(|v| v.abs()).sum()
    }

    /// Zeroes the whole buffer.
    pub fn clear(&mut self) {
        self.acc.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accumulate_then_extract_conserves_mass() {
        let mut r = Residual::new(6);
        let g = [0.1, -2.0, 0.3, 4.0, -0.5, 0.6];
        r.accumulate(&g);
        let before_l1 = r.l1();
        let top = r.extract_topk(2);
        let extracted_l1: f32 = top.values().iter().map(|v| v.abs()).sum();
        assert!((r.l1() + extracted_l1 - before_l1).abs() < 1e-6);
    }

    #[test]
    fn extracted_coordinates_zeroed() {
        let mut r = Residual::new(3);
        r.accumulate(&[5.0, 1.0, -7.0]);
        let top = r.extract_topk(1);
        assert_eq!(top.indices(), &[2]);
        assert_eq!(r.dense(), &[5.0, 1.0, 0.0]);
    }

    #[test]
    fn put_back_restores() {
        let mut r = Residual::new(3);
        r.accumulate(&[1.0, 2.0, 3.0]);
        let top = r.extract_topk(3);
        r.put_back(&top);
        assert_eq!(r.dense(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn range_extraction_full_range_matches_extract_topk() {
        let g: Vec<f32> = (0..97)
            .map(|i| ((i * 37 + 11) % 53) as f32 - 26.0 + (i as f32 * 0.31).cos())
            .collect();
        let mut a = Residual::new(97);
        let mut b = Residual::new(97);
        a.accumulate(&g);
        b.accumulate(&g);
        let whole = a.extract_topk(13);
        let ranged = b.extract_topk_range(0..97, 13);
        assert_eq!(whole, ranged);
        assert_eq!(a.dense(), b.dense());
    }

    #[test]
    fn range_extraction_is_stratified_and_pads_with_zeros() {
        let mut r = Residual::new(8);
        r.accumulate(&[9.0, 1.0, 0.0, 0.0, -7.0, 2.0, 0.0, 0.0]);
        // Region [2, 6) holds {0, 0, -7, 2}: top-3 must include one
        // zero-valued pad and leave the rest of the buffer untouched.
        let ext = r.extract_topk_range(2..6, 3);
        assert_eq!(ext.nnz(), 3);
        assert_eq!(ext.indices(), &[2, 4, 5]);
        assert_eq!(ext.values(), &[0.0, -7.0, 2.0]);
        assert_eq!(r.dense(), &[9.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn residual_accumulates_across_iterations() {
        // A small value ignored twice must eventually win top-1.
        let mut r = Residual::new(2);
        r.accumulate(&[0.6, 1.0]);
        let t1 = r.extract_topk(1);
        assert_eq!(t1.indices(), &[1]);
        r.accumulate(&[0.6, 1.0]);
        let t2 = r.extract_topk(1);
        // residual on coord 0 is now 1.2 > 1.0
        assert_eq!(t2.indices(), &[0]);
        assert!((t2.values()[0] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn fused_accumulate_extract_matches_unfused() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let grads: Vec<Vec<f32>> = (0..4)
            .map(|s| {
                (0..257)
                    .map(|i| ((i * 31 + s * 7) % 101) as f32 - 50.0 + (i as f32 * 0.13).sin())
                    .collect()
            })
            .collect();
        let mut fused = Residual::new(257);
        let mut unfused = Residual::new(257);
        let mut rng_f = StdRng::seed_from_u64(11);
        let mut rng_u = StdRng::seed_from_u64(11);
        for g in &grads {
            let a = fused.accumulate_extract_threshold(g, 19, 64, &mut rng_f);
            unfused.accumulate(g);
            let b = unfused.extract_topk_threshold(19, 64, &mut rng_u);
            assert_eq!(a, b);
            assert_eq!(fused.dense(), unfused.dense());
        }
    }

    #[test]
    fn clear_zeroes() {
        let mut r = Residual::new(2);
        r.accumulate(&[1.0, 2.0]);
        r.clear();
        assert_eq!(r.l1(), 0.0);
    }

    proptest! {
        /// No gradient is ever lost: dense(buffer) + densify(extracted)
        /// equals the running sum of all accumulated gradients.
        #[test]
        fn prop_error_feedback_conserves_gradient(
            grads in proptest::collection::vec(
                proptest::collection::vec(-3.0f32..3.0, 16), 1..6),
            k in 1usize..8,
        ) {
            let dim = 16;
            let mut r = Residual::new(dim);
            let mut applied = vec![0.0f64; dim];
            let mut total = vec![0.0f64; dim];
            for g in &grads {
                r.accumulate(g);
                for (t, &x) in total.iter_mut().zip(g.iter()) { *t += x as f64; }
                let ext = r.extract_topk(k);
                for (i, v) in ext.iter() { applied[i as usize] += v as f64; }
            }
            for i in 0..dim {
                let reconstructed = applied[i] + r.dense()[i] as f64;
                prop_assert!((reconstructed - total[i]).abs() < 1e-3,
                             "coord {i}: {reconstructed} vs {}", total[i]);
            }
        }
    }
}
