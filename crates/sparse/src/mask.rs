use crate::SparseVec;

/// A set of selected coordinates over a vector of dimension `dim`.
///
/// The paper's algorithms pass boolean masks (`Mask`, `gMask`) alongside
/// sparse gradients to tell workers which coordinates survived a global
/// selection. We store the selected indices sorted, so membership is a
/// binary search and set algebra is a linear merge.
///
/// # Examples
///
/// ```
/// use gtopk_sparse::Mask;
/// let m = Mask::from_indices(10, vec![3, 1, 7]);
/// assert!(m.contains(7));
/// assert!(!m.contains(2));
/// assert_eq!(m.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask {
    dim: usize,
    indices: Vec<u32>,
}

impl Mask {
    /// An empty mask over dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        Mask {
            dim,
            indices: Vec::new(),
        }
    }

    /// Builds a mask from (possibly unsorted) indices; duplicates collapse.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= dim`.
    pub fn from_indices(dim: usize, mut indices: Vec<u32>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        if let Some(&last) = indices.last() {
            assert!(
                (last as usize) < dim,
                "index {last} out of bounds for dim {dim}"
            );
        }
        Mask { dim, indices }
    }

    /// The mask selecting exactly the stored coordinates of a sparse vector.
    pub fn of_sparse(v: &SparseVec) -> Self {
        Mask {
            dim: v.dim(),
            indices: v.indices().to_vec(),
        }
    }

    /// Logical dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of selected coordinates.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` if no coordinate is selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Sorted selected indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// `true` if coordinate `i` is selected.
    pub fn contains(&self, i: u32) -> bool {
        self.indices.binary_search(&i).is_ok()
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn intersect(&self, other: &Mask) -> Mask {
        assert_eq!(self.dim, other.dim, "mask dimension mismatch");
        let mut out = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() && b < other.indices.len() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Equal => {
                    out.push(self.indices[a]);
                    a += 1;
                    b += 1;
                }
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
            }
        }
        Mask {
            dim: self.dim,
            indices: out,
        }
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn difference(&self, other: &Mask) -> Mask {
        assert_eq!(self.dim, other.dim, "mask dimension mismatch");
        let indices = self
            .indices
            .iter()
            .copied()
            .filter(|&i| !other.contains(i))
            .collect();
        Mask {
            dim: self.dim,
            indices,
        }
    }

    /// Densifies into a boolean vector of length `dim`.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = vec![false; self.dim];
        for &i in &self.indices {
            out[i as usize] = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_sorts_and_dedups() {
        let m = Mask::from_indices(8, vec![5, 1, 5, 3]);
        assert_eq!(m.indices(), &[1, 3, 5]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_panics() {
        let _ = Mask::from_indices(4, vec![9]);
    }

    #[test]
    fn set_algebra() {
        let a = Mask::from_indices(10, vec![1, 2, 3, 4]);
        let b = Mask::from_indices(10, vec![3, 4, 5]);
        assert_eq!(a.intersect(&b).indices(), &[3, 4]);
        assert_eq!(a.difference(&b).indices(), &[1, 2]);
        assert_eq!(b.difference(&a).indices(), &[5]);
    }

    #[test]
    fn of_sparse_matches_stored_indices() {
        let v = SparseVec::from_pairs(6, vec![(5, 1.0), (0, 2.0)]);
        let m = Mask::of_sparse(&v);
        assert_eq!(m.indices(), v.indices());
        assert_eq!(m.dim(), 6);
    }

    #[test]
    fn to_bools_densifies() {
        let m = Mask::from_indices(4, vec![0, 2]);
        assert_eq!(m.to_bools(), vec![true, false, true, false]);
    }

    #[test]
    fn empty_mask() {
        let m = Mask::empty(3);
        assert!(m.is_empty());
        assert!(!m.contains(0));
    }
}
