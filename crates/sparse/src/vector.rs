use std::fmt;

/// A sparse gradient vector: sorted unique indices with their values.
///
/// This is the `[V, I]` pair the paper transmits for every sparsified
/// gradient. Indices are `u32` (models up to 2³²−1 parameters, far beyond
/// the paper's 25M-parameter ResNet-50), sorted ascending and unique, which
/// makes merge-adds a linear two-pointer walk.
///
/// # Examples
///
/// ```
/// use gtopk_sparse::SparseVec;
/// let v = SparseVec::from_pairs(8, vec![(5, 1.0), (2, -3.0)]);
/// assert_eq!(v.indices(), &[2, 5]);
/// assert_eq!(v.get(2), -3.0);
/// assert_eq!(v.get(0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    // Crate-internal kernels (top-k selection, the ⊤ merge) write these
    // buffers directly to reuse their allocations across steps. Invariant
    // every writer must uphold: `indices` strictly ascending, parallel to
    // `values`, all `< dim`.
    pub(crate) dim: usize,
    pub(crate) indices: Vec<u32>,
    pub(crate) values: Vec<f32>,
}

impl SparseVec {
    /// An empty sparse vector of logical dimension `dim`.
    pub fn empty(dim: usize) -> Self {
        SparseVec {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from `(index, value)` pairs, sorting and summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= dim`.
    pub fn from_pairs(dim: usize, mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            assert!((i as usize) < dim, "index {i} out of bounds for dim {dim}");
            if indices.last() == Some(&i) {
                *values.last_mut().expect("values parallel to indices") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVec {
            dim,
            indices,
            values,
        }
    }

    /// An empty sparse vector that reuses the given buffers' capacity.
    ///
    /// The buffers are cleared, not reallocated — this is how pooled
    /// (recycled) index/value vectors re-enter service without touching
    /// the heap.
    pub fn empty_with_buffers(dim: usize, mut indices: Vec<u32>, mut values: Vec<f32>) -> Self {
        indices.clear();
        values.clear();
        SparseVec {
            dim,
            indices,
            values,
        }
    }

    /// Removes all entries, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Overwrites this vector with a copy of `other`, reusing this
    /// vector's buffers (no allocation once capacity suffices).
    pub fn copy_from(&mut self, other: &SparseVec) {
        self.dim = other.dim;
        self.indices.clear();
        self.indices.extend_from_slice(&other.indices);
        self.values.clear();
        self.values.extend_from_slice(&other.values);
    }

    /// Builds from already-sorted unique indices and parallel values.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, indices are not strictly ascending, or any
    /// index is `>= dim`.
    pub fn from_sorted(dim: usize, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly ascending");
        }
        if let Some(&last) = indices.last() {
            assert!(
                (last as usize) < dim,
                "index {last} out of bounds for dim {dim}"
            );
        }
        SparseVec {
            dim,
            indices,
            values,
        }
    }

    /// Densifies into a `Vec<f32>` of length `dim`.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            out[i as usize] = v;
        }
        out
    }

    /// Adds this sparse vector into an existing dense buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != self.dim()`.
    pub fn add_into_dense(&self, dense: &mut [f32]) {
        assert_eq!(dense.len(), self.dim, "dense buffer length mismatch");
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            dense[i as usize] += v;
        }
    }

    /// Adds every entry into a contiguous dense *region* starting at
    /// global coordinate `start`: `region[i - start] += v`. The
    /// parameter-server fold uses this to accumulate globally-indexed
    /// shard pushes into a region-local buffer.
    ///
    /// # Panics
    ///
    /// Panics if any index falls outside `[start, start + region.len())`.
    pub fn add_into_region(&self, start: usize, region: &mut [f32]) {
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            region[i as usize - start] += v;
        }
    }

    /// Logical dimension of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Sorted coordinate indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Value at coordinate `i` (0.0 if not stored).
    pub fn get(&self, i: u32) -> f32 {
        match self.indices.binary_search(&i) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// `true` if coordinate `i` is stored.
    pub fn contains(&self, i: u32) -> bool {
        self.indices.binary_search(&i).is_ok()
    }

    /// Iterator over `(index, value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Multiplies every stored value by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Merge-adds two sparse vectors (exact sparse sum, no truncation).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&self, other: &SparseVec) -> SparseVec {
        assert_eq!(self.dim, other.dim, "dimension mismatch in sparse add");
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.nnz() || b < other.nnz() {
            let ia = self.indices.get(a).copied();
            let ib = other.indices.get(b).copied();
            match (ia, ib) {
                (Some(x), Some(y)) if x == y => {
                    indices.push(x);
                    values.push(self.values[a] + other.values[b]);
                    a += 1;
                    b += 1;
                }
                (Some(x), Some(y)) if x < y => {
                    indices.push(x);
                    values.push(self.values[a]);
                    a += 1;
                }
                (Some(_), Some(y)) => {
                    indices.push(y);
                    values.push(other.values[b]);
                    b += 1;
                }
                (Some(x), None) => {
                    indices.push(x);
                    values.push(self.values[a]);
                    a += 1;
                }
                (None, Some(y)) => {
                    indices.push(y);
                    values.push(other.values[b]);
                    b += 1;
                }
                (None, None) => unreachable!("loop condition guarantees one side"),
            }
        }
        SparseVec {
            dim: self.dim,
            indices,
            values,
        }
    }

    /// Splits entries into those whose index is in `keep` and the rest.
    ///
    /// Used by the trainer to separate globally-accepted coordinates from
    /// locally-selected-but-globally-rejected ones (Algorithm 4, line 10).
    ///
    /// # Panics
    ///
    /// Panics if `keep` was built for a different dimension.
    pub fn partition_by(&self, keep: &crate::Mask) -> (SparseVec, SparseVec) {
        let mut kept = SparseVec::empty(self.dim);
        let mut rejected = SparseVec::empty(self.dim);
        self.partition_by_into(keep, &mut kept, &mut rejected);
        (kept, rejected)
    }

    /// Like [`SparseVec::partition_by`] but writing into caller-provided
    /// vectors (cleared first), reusing their buffers.
    ///
    /// # Panics
    ///
    /// Panics if `keep` was built for a different dimension.
    pub fn partition_by_into(
        &self,
        keep: &crate::Mask,
        kept: &mut SparseVec,
        rejected: &mut SparseVec,
    ) {
        assert_eq!(self.dim, keep.dim(), "mask dimension mismatch");
        kept.dim = self.dim;
        kept.indices.clear();
        kept.values.clear();
        rejected.dim = self.dim;
        rejected.indices.clear();
        rejected.values.clear();
        for (i, v) in self.iter() {
            if keep.contains(i) {
                kept.indices.push(i);
                kept.values.push(v);
            } else {
                rejected.indices.push(i);
                rejected.values.push(v);
            }
        }
    }

    /// Merge-adds `self + other` into `out` (cleared first), reusing
    /// `out`'s buffers — the allocation-free form of [`SparseVec::add`].
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `out` aliases an input.
    pub fn add_into(&self, other: &SparseVec, out: &mut SparseVec) {
        assert_eq!(self.dim, other.dim, "dimension mismatch in sparse add");
        out.dim = self.dim;
        out.indices.clear();
        out.values.clear();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.nnz() && b < other.nnz() {
            let (x, y) = (self.indices[a], other.indices[b]);
            match x.cmp(&y) {
                std::cmp::Ordering::Equal => {
                    out.indices.push(x);
                    out.values.push(self.values[a] + other.values[b]);
                    a += 1;
                    b += 1;
                }
                std::cmp::Ordering::Less => {
                    out.indices.push(x);
                    out.values.push(self.values[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.indices.push(y);
                    out.values.push(other.values[b]);
                    b += 1;
                }
            }
        }
        out.indices.extend_from_slice(&self.indices[a..]);
        out.values.extend_from_slice(&self.values[a..]);
        out.indices.extend_from_slice(&other.indices[b..]);
        out.values.extend_from_slice(&other.values[b..]);
    }

    /// Splits entries at a coordinate boundary: entries with index
    /// `< boundary` go to `lo`, the rest to `hi` (both cleared first,
    /// buffers reused — no allocation once capacity suffices).
    ///
    /// This is the split primitive of the recursive-halving sparse
    /// collectives: one binary search, two bulk copies.
    pub fn split_at_into(&self, boundary: u32, lo: &mut SparseVec, hi: &mut SparseVec) {
        let cut = self.indices.partition_point(|&i| i < boundary);
        lo.dim = self.dim;
        lo.indices.clear();
        lo.values.clear();
        lo.indices.extend_from_slice(&self.indices[..cut]);
        lo.values.extend_from_slice(&self.values[..cut]);
        hi.dim = self.dim;
        hi.indices.clear();
        hi.values.clear();
        hi.indices.extend_from_slice(&self.indices[cut..]);
        hi.values.extend_from_slice(&self.values[cut..]);
    }

    /// L2 norm of the stored values.
    pub fn norm2(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Consumes the vector into `(dim, indices, values)`.
    pub fn into_parts(self) -> (usize, Vec<u32>, Vec<f32>) {
        (self.dim, self.indices, self.values)
    }
}

impl fmt::Display for SparseVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseVec(dim={}, nnz={})", self.dim, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges_duplicates() {
        let v = SparseVec::from_pairs(10, vec![(7, 1.0), (2, 2.0), (7, 0.5)]);
        assert_eq!(v.indices(), &[2, 7]);
        assert_eq!(v.values(), &[2.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_pairs_rejects_out_of_range() {
        let _ = SparseVec::from_pairs(4, vec![(4, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_unsorted() {
        let _ = SparseVec::from_sorted(4, vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    fn dense_roundtrip() {
        let v = SparseVec::from_pairs(5, vec![(0, 1.0), (4, -2.0)]);
        assert_eq!(v.to_dense(), vec![1.0, 0.0, 0.0, 0.0, -2.0]);
        let mut buf = vec![1.0; 5];
        v.add_into_dense(&mut buf);
        assert_eq!(buf, vec![2.0, 1.0, 1.0, 1.0, -1.0]);
    }

    #[test]
    fn get_and_contains() {
        let v = SparseVec::from_pairs(5, vec![(1, 9.0)]);
        assert_eq!(v.get(1), 9.0);
        assert_eq!(v.get(2), 0.0);
        assert!(v.contains(1));
        assert!(!v.contains(0));
    }

    #[test]
    fn sparse_add_matches_dense_add() {
        let a = SparseVec::from_pairs(6, vec![(0, 1.0), (3, 2.0), (5, -1.0)]);
        let b = SparseVec::from_pairs(6, vec![(1, 4.0), (3, -2.0)]);
        let c = a.add(&b);
        let mut expect = a.to_dense();
        for (x, y) in expect.iter_mut().zip(b.to_dense()) {
            *x += y;
        }
        assert_eq!(c.to_dense(), expect);
        // exact cancellation keeps the explicit entry (value 0.0) — that is
        // fine for correctness; nnz may count it.
        assert_eq!(c.get(3), 0.0);
    }

    #[test]
    fn scale_scales_all() {
        let mut v = SparseVec::from_pairs(3, vec![(0, 2.0), (2, -4.0)]);
        v.scale(0.5);
        assert_eq!(v.values(), &[1.0, -2.0]);
    }

    #[test]
    fn empty_vector_behaves() {
        let v = SparseVec::empty(4);
        assert!(v.is_empty());
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.to_dense(), vec![0.0; 4]);
        assert_eq!(v.add(&v).nnz(), 0);
    }

    #[test]
    fn display_mentions_dims() {
        let v = SparseVec::from_pairs(9, vec![(3, 1.0)]);
        assert_eq!(v.to_string(), "SparseVec(dim=9, nnz=1)");
    }

    #[test]
    fn empty_with_buffers_reuses_capacity() {
        let (_, idx, val) = SparseVec::from_pairs(8, vec![(1, 1.0), (5, 2.0)]).into_parts();
        let cap = idx.capacity();
        let v = SparseVec::empty_with_buffers(16, idx, val);
        assert!(v.is_empty());
        assert_eq!(v.dim(), 16);
        let (_, idx2, _) = v.into_parts();
        assert_eq!(idx2.capacity(), cap);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = SparseVec::from_pairs(12, vec![(0, 1.0), (7, -2.0)]);
        let mut dst = SparseVec::from_pairs(3, vec![(1, 9.0)]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.clear();
        assert!(dst.is_empty());
        assert_eq!(dst.dim(), 12);
    }

    #[test]
    fn add_into_matches_add() {
        let a = SparseVec::from_pairs(10, vec![(0, 1.0), (3, 2.0), (9, -1.0)]);
        let b = SparseVec::from_pairs(10, vec![(1, 4.0), (3, -2.0), (8, 5.0)]);
        let mut out = SparseVec::from_pairs(2, vec![(0, 99.0)]);
        a.add_into(&b, &mut out);
        assert_eq!(out, a.add(&b));
        // Empty operands hit the tail-extend paths.
        let e = SparseVec::empty(10);
        a.add_into(&e, &mut out);
        assert_eq!(out, a);
        e.add_into(&b, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn split_at_into_partitions_by_coordinate() {
        let v = SparseVec::from_pairs(16, vec![(0, 1.0), (3, 2.0), (8, -1.0), (15, 4.0)]);
        let mut lo = SparseVec::from_pairs(2, vec![(0, 9.0)]);
        let mut hi = SparseVec::empty(2);
        v.split_at_into(8, &mut lo, &mut hi);
        assert_eq!(lo, SparseVec::from_pairs(16, vec![(0, 1.0), (3, 2.0)]));
        assert_eq!(hi, SparseVec::from_pairs(16, vec![(8, -1.0), (15, 4.0)]));
        // Degenerate boundaries: everything on one side.
        v.split_at_into(0, &mut lo, &mut hi);
        assert!(lo.is_empty());
        assert_eq!(hi, v);
        v.split_at_into(16, &mut lo, &mut hi);
        assert_eq!(lo, v);
        assert!(hi.is_empty());
    }

    #[test]
    fn partition_by_into_matches_partition_by() {
        let v = SparseVec::from_pairs(8, vec![(0, 1.0), (2, 2.0), (5, 3.0)]);
        let keep = crate::Mask::from_indices(8, vec![2, 6]);
        let (k1, r1) = v.partition_by(&keep);
        let mut k2 = SparseVec::from_pairs(1, vec![(0, 7.0)]);
        let mut r2 = SparseVec::empty(1);
        v.partition_by_into(&keep, &mut k2, &mut r2);
        assert_eq!(k1, k2);
        assert_eq!(r1, r2);
    }
}
