//! Wire codec for sparse gradients.
//!
//! The paper transmits a sparsified gradient as the pair `[V, I]` — `k`
//! 32-bit values plus `k` 32-bit indices, i.e. `2k` four-byte words, the
//! count behind every `2k` term in Eqs. 6–7. This module makes that wire
//! format explicit: a little-endian framing with a validated decoder, so
//! the byte accounting used by the simulated network corresponds to real
//! serialized bytes.
//!
//! Layout: `dim: u64 | nnz: u64 | indices: nnz × u32 | values: nnz × f32`.
//!
//! This is not only an accounting device: the real-TCP transport
//! (`gtopk_comm::transport`) ships sparse DATA frames in exactly this
//! encoding, so the bytes the simulator charges for are the bytes that
//! cross the socket.

use crate::SparseVec;
use std::fmt;

/// Bytes of framing overhead (dim + nnz header).
pub const HEADER_BYTES: usize = 16;

/// Decoding error for the sparse wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than its header or declared body.
    Truncated {
        /// Bytes required.
        expected: usize,
        /// Bytes present.
        actual: usize,
    },
    /// `nnz` exceeds `dim`, or an index is out of range / out of order.
    Malformed {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { expected, actual } => {
                write!(f, "buffer truncated: need {expected} bytes, have {actual}")
            }
            WireError::Malformed { reason } => write!(f, "malformed sparse frame: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a sparse vector to the wire format.
///
/// The body is exactly `8·nnz` bytes (`2·nnz` four-byte words) plus the
/// 16-byte header — the paper's `2k` accounting.
///
/// # Examples
///
/// ```
/// use gtopk_sparse::{SparseVec, wire};
/// let v = SparseVec::from_pairs(100, vec![(3, 1.5), (42, -2.0)]);
/// let bytes = wire::encode(&v);
/// assert_eq!(bytes.len(), wire::HEADER_BYTES + 2 * 8);
/// assert_eq!(wire::decode(&bytes).unwrap(), v);
/// ```
pub fn encode(v: &SparseVec) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + 8 * v.nnz());
    out.extend_from_slice(&(v.dim() as u64).to_le_bytes());
    out.extend_from_slice(&(v.nnz() as u64).to_le_bytes());
    for &i in v.indices() {
        out.extend_from_slice(&i.to_le_bytes());
    }
    for &x in v.values() {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Deserializes and validates a sparse vector from the wire format.
///
/// # Errors
///
/// [`WireError::Truncated`] if the buffer is too short;
/// [`WireError::Malformed`] if `nnz > dim`, indices are out of range, or
/// not strictly ascending.
pub fn decode(bytes: &[u8]) -> Result<SparseVec, WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::Truncated {
            expected: HEADER_BYTES,
            actual: bytes.len(),
        });
    }
    let dim = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")) as usize;
    let nnz = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    if nnz > dim {
        return Err(WireError::Malformed {
            reason: "nnz exceeds dimension",
        });
    }
    let need = HEADER_BYTES + 8 * nnz;
    if bytes.len() < need {
        return Err(WireError::Truncated {
            expected: need,
            actual: bytes.len(),
        });
    }
    let mut indices = Vec::with_capacity(nnz);
    let mut pos = HEADER_BYTES;
    for _ in 0..nnz {
        let i = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if (i as usize) >= dim {
            return Err(WireError::Malformed {
                reason: "index out of range",
            });
        }
        if let Some(&prev) = indices.last() {
            if i <= prev {
                return Err(WireError::Malformed {
                    reason: "indices not strictly ascending",
                });
            }
        }
        indices.push(i);
        pos += 4;
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(f32::from_le_bytes(
            bytes[pos..pos + 4].try_into().expect("4 bytes"),
        ));
        pos += 4;
    }
    Ok(SparseVec::from_sorted(dim, indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let v = SparseVec::from_pairs(64, vec![(0, 1.0), (7, -2.5), (63, 0.25)]);
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn empty_vector_roundtrips() {
        let v = SparseVec::empty(10);
        let bytes = encode(&v);
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(decode(&bytes).unwrap(), v);
    }

    #[test]
    fn body_is_2k_words() {
        let k = 25usize;
        let v = SparseVec::from_pairs(1000, (0..k as u32).map(|i| (i * 3, 1.0)).collect());
        assert_eq!(encode(&v).len() - HEADER_BYTES, 2 * k * 4);
    }

    #[test]
    fn truncated_buffers_rejected() {
        let v = SparseVec::from_pairs(16, vec![(1, 1.0), (2, 2.0)]);
        let bytes = encode(&v);
        assert!(matches!(
            decode(&bytes[..10]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn malformed_frames_rejected() {
        // nnz > dim
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u64.to_le_bytes());
        bad.extend_from_slice(&3u64.to_le_bytes());
        bad.extend_from_slice(&[0u8; 24]);
        assert!(matches!(decode(&bad), Err(WireError::Malformed { .. })));

        // index out of range
        let v = SparseVec::from_pairs(4, vec![(1, 1.0)]);
        let mut bytes = encode(&v);
        bytes[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Malformed { .. })));

        // out-of-order indices
        let v2 = SparseVec::from_pairs(8, vec![(2, 1.0), (5, 2.0)]);
        let mut bytes2 = encode(&v2);
        bytes2[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&6u32.to_le_bytes());
        assert!(matches!(decode(&bytes2), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn display_messages_are_informative() {
        let e = WireError::Truncated {
            expected: 16,
            actual: 3,
        };
        assert!(e.to_string().contains("16"));
        let m = WireError::Malformed {
            reason: "index out of range",
        };
        assert!(m.to_string().contains("index"));
    }

    proptest! {
        /// Every valid sparse vector roundtrips bit-exactly, and the
        /// frame size matches the paper's 2k accounting.
        #[test]
        fn prop_roundtrip(pairs in proptest::collection::btree_map(0u32..500, -1e6f32..1e6, 0..64)) {
            let v = SparseVec::from_pairs(500, pairs.into_iter().collect());
            let bytes = encode(&v);
            prop_assert_eq!(bytes.len(), HEADER_BYTES + 8 * v.nnz());
            let back = decode(&bytes).unwrap();
            prop_assert_eq!(back.indices(), v.indices());
            // Bit-exact values (NaN-free domain).
            for (a, b) in back.values().iter().zip(v.values()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// A top-k extraction from any dense gradient produces a frame
        /// of exactly `16 + 8·min(k, nnz)` bytes that roundtrips
        /// bit-exactly — the wire cost the α-β model charges per `2k`
        /// words is the cost the codec actually pays, for every k.
        #[test]
        fn prop_topk_extraction_roundtrips(
            dense in proptest::collection::vec(-1e3f32..1e3, 1..200),
            k in 1usize..64,
        ) {
            let v = crate::topk_sparse(&dense, k);
            prop_assert!(v.nnz() <= k.min(dense.len()));
            prop_assert!(v.values().iter().all(|x| x.is_finite()), "top-k must be NaN-free");
            let bytes = encode(&v);
            prop_assert_eq!(bytes.len(), HEADER_BYTES + 8 * v.nnz());
            prop_assert_eq!(decode(&bytes).unwrap(), v);
        }

        /// Empty frames are 16 bytes for any dimension and roundtrip.
        #[test]
        fn prop_empty_roundtrips_at_any_dim(dim in 0usize..100_000) {
            let v = SparseVec::empty(dim);
            let bytes = encode(&v);
            prop_assert_eq!(bytes.len(), HEADER_BYTES);
            prop_assert_eq!(decode(&bytes).unwrap(), v);
        }

        /// Every strict prefix of a valid frame is rejected as
        /// truncated — a partially received buffer can never decode
        /// into a plausible-but-wrong gradient.
        #[test]
        fn prop_truncation_always_detected(
            pairs in proptest::collection::btree_map(0u32..300, -1e3f32..1e3, 1..32),
            cut_frac in 0.0f64..1.0,
        ) {
            let v = SparseVec::from_pairs(300, pairs.into_iter().collect());
            let bytes = encode(&v);
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            let truncated = matches!(decode(&bytes[..cut]), Err(WireError::Truncated { .. }));
            prop_assert!(truncated, "prefix of {} of {} bytes decoded", cut, bytes.len());
        }
    }
}
