//! Top-k selection kernels.
//!
//! The paper selects the `k = ρ·m` gradient coordinates of largest absolute
//! value (Algorithm 1, lines 5–7). We provide an exact O(m) expected-time
//! quickselect ([`topk_indices`] / [`topk_indices_into`]), a plain
//! threshold filter ([`threshold_sparse`]), and a sampled-threshold
//! approximation ([`sampled_topk_sparse`]) of the kind used to cut GPU
//! selection cost — the paper's Fig. 11 flags compression time as a real
//! overhead.
//!
//! # Threading & determinism
//!
//! Large inputs are selected in parallel: the index space is split into
//! contiguous chunks (see `gtopk_tensor::parallel`), each chunk's local
//! top-k is found independently, and an exact final select runs over the
//! ≤ `threads·k` gathered candidates. This is *bitwise identical* to the
//! serial kernel for any thread count or chunking: the comparator is a
//! strict total order (larger magnitude first, lower index breaks ties,
//! NaN magnitude counts as 0), so the global top-k set is unique, and
//! every member of it is necessarily inside its own chunk's local top-k —
//! fewer than `k` coordinates beat it globally, hence fewer than `k`
//! within its chunk. The candidate union therefore always contains the
//! answer and the final exact select returns exactly the serial result.
//!
//! The determinism is load-bearing: every worker replica must compute an
//! identical selection for identical input, or replicas drift apart.
//!
//! # Scratch reuse
//!
//! The `_into` variants take a [`TopkScratch`] so the O(m) index buffer is
//! allocated once per trainer, not once per step. The plain variants
//! allocate internally and are unchanged in behavior.

use crate::SparseVec;
use gtopk_tensor::{parallel, simd};
use rand::Rng;
use std::cmp::Ordering;

/// Inputs below this many elements per chunk are selected serially —
/// spawn overhead beats quickselect on anything smaller.
const PAR_MIN_CHUNK: usize = 32 * 1024;

/// Comparison magnitude of a value: `|v|`, with NaN mapped to 0 so the
/// comparator stays a total order (a NaN gradient coordinate sorts as if
/// it were zero instead of poisoning the selection).
#[inline]
fn mag(v: f32) -> f32 {
    let m = v.abs();
    if m.is_nan() {
        0.0
    } else {
        m
    }
}

/// Compares candidate coordinates: larger |value| first, then lower index.
fn tie_cmp(values: &[f32], a: u32, b: u32) -> Ordering {
    let (va, vb) = (mag(values[a as usize]), mag(values[b as usize]));
    // `mag` never returns NaN, so `partial_cmp` is total here; the `None`
    // arm is unreachable but kept so the comparator is safe by inspection.
    match vb.partial_cmp(&va) {
        Some(Ordering::Equal) | None => a.cmp(&b),
        Some(ord) => ord,
    }
}

/// Reusable buffers for [`topk_indices_into`] / [`topk_sparse_into`].
///
/// Holds the O(m) index permutation buffer and the parallel candidate
/// buffer, so steady-state selection performs zero heap allocation.
#[derive(Debug, Clone, Default)]
pub struct TopkScratch {
    /// Index buffer: 0..n, partially selected in place (per chunk when
    /// running parallel).
    idx: Vec<u32>,
    /// Gathered per-chunk candidates (≤ chunks·k entries), and the
    /// strictly-above-threshold candidates of the estimate paths.
    cand: Vec<u32>,
    /// Sampled magnitudes of the threshold-estimate paths (`sample`
    /// entries) — kept here so estimation allocates nothing per call.
    mags: Vec<f32>,
}

impl TopkScratch {
    /// Empty scratch; buffers grow to the input size on first use.
    pub fn new() -> Self {
        TopkScratch::default()
    }
}

/// Writes the indices of the `k` entries of largest absolute value into
/// `out`, ascending, reusing `scratch` buffers.
///
/// Writes all indices if `k >= values.len()`. Expected O(m) via
/// `select_nth_unstable_by`; runs chunk-parallel for large inputs with a
/// bitwise-identical result (see module docs). Deterministic under ties
/// (lower index wins).
pub fn topk_indices_into(values: &[f32], k: usize, scratch: &mut TopkScratch, out: &mut Vec<u32>) {
    out.clear();
    let n = values.len();
    if k == 0 || n == 0 {
        return;
    }
    if k >= n {
        out.extend(0..n as u32);
        return;
    }
    scratch.idx.clear();
    scratch.idx.extend(0..n as u32);
    let chunks = parallel::chunk_count(n, PAR_MIN_CHUNK);
    // Parallel selection only pays off while the per-chunk top-k is much
    // smaller than the chunks themselves; otherwise nearly every element
    // becomes a candidate and the final select repeats the full work.
    if chunks > 1 && 2 * chunks * k < n {
        parallel::for_each_chunk_mut(&mut scratch.idx, PAR_MIN_CHUNK, |_, _, chunk| {
            if k < chunk.len() {
                chunk.select_nth_unstable_by(k - 1, |&a, &b| tie_cmp(values, a, b));
            }
        });
        let (idx, cand) = (&scratch.idx, &mut scratch.cand);
        cand.clear();
        for (start, end) in parallel::chunk_bounds(n, PAR_MIN_CHUNK) {
            cand.extend_from_slice(&idx[start..start + k.min(end - start)]);
        }
        if k < cand.len() {
            cand.select_nth_unstable_by(k - 1, |&a, &b| tie_cmp(values, a, b));
            cand.truncate(k);
        }
        out.extend_from_slice(cand);
    } else {
        scratch
            .idx
            .select_nth_unstable_by(k - 1, |&a, &b| tie_cmp(values, a, b));
        out.extend_from_slice(&scratch.idx[..k]);
    }
    out.sort_unstable();
}

/// Indices of the `k` entries of largest absolute value, ascending order.
///
/// Allocating wrapper around [`topk_indices_into`]; hot paths hold a
/// [`TopkScratch`] and call the `_into` variant instead.
///
/// # Examples
///
/// ```
/// use gtopk_sparse::topk_indices;
/// assert_eq!(topk_indices(&[1.0, -9.0, 3.0], 2), vec![1, 2]);
/// ```
pub fn topk_indices(values: &[f32], k: usize) -> Vec<u32> {
    let mut out = Vec::new();
    topk_indices_into(values, k, &mut TopkScratch::new(), &mut out);
    out
}

/// Sparsifies a dense vector into `out`, keeping the `k` entries of
/// largest |value| and reusing `scratch` buffers.
///
/// This is exactly `G̃ = G ⊙ Mask` of Algorithm 1, allocation-free in
/// steady state.
pub fn topk_sparse_into(dense: &[f32], k: usize, scratch: &mut TopkScratch, out: &mut SparseVec) {
    out.dim = dense.len();
    let mut indices = std::mem::take(&mut out.indices);
    topk_indices_into(dense, k, scratch, &mut indices);
    out.values.clear();
    out.values
        .extend(indices.iter().map(|&i| dense[i as usize]));
    out.indices = indices;
}

/// Sparsifies a dense vector keeping the `k` entries of largest |value|.
///
/// Allocating wrapper around [`topk_sparse_into`].
pub fn topk_sparse(dense: &[f32], k: usize) -> SparseVec {
    let mut out = SparseVec::empty(dense.len());
    topk_sparse_into(dense, k, &mut TopkScratch::new(), &mut out);
    out
}

/// Sparsifies by keeping every entry with `|value| > thr`.
///
/// Runs chunk-parallel for large inputs; chunks are contiguous and
/// gathered in order, so the result is identical to the serial filter.
pub fn threshold_sparse(dense: &[f32], thr: f32) -> SparseVec {
    let parts = parallel::map_chunks(dense, PAR_MIN_CHUNK, |_, start, chunk| {
        // SIMD compaction emits the surviving indices in order; the
        // (short) value gather reads only the survivors back.
        let mut indices = Vec::new();
        simd::compact_above(chunk, thr, start as u32, &mut indices);
        let values: Vec<f32> = indices.iter().map(|&i| dense[i as usize]).collect();
        (indices, values)
    });
    let total: usize = parts.iter().map(|(i, _)| i.len()).sum();
    let mut indices = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    for (i, v) in parts {
        indices.extend_from_slice(&i);
        values.extend_from_slice(&v);
    }
    SparseVec::from_sorted(dense.len(), indices, values)
}

/// Approximate top-k via sampled-threshold estimation, returning exactly
/// `min(k, len)` entries.
///
/// A uniform sample of `sample` coordinates estimates the k-th largest
/// magnitude; a threshold pass collects candidates; the candidate set is
/// then trimmed (exact top-k over candidates) or, if the estimate was too
/// aggressive, the threshold is relaxed geometrically until enough
/// candidates exist. This mirrors the DGC-style sampling trick and is the
/// cheaper of the two selection kernels for large `m` on hardware where a
/// full quickselect is expensive.
///
/// # Panics
///
/// Panics if `sample == 0` while `k > 0` and the input is non-empty.
pub fn sampled_topk_sparse(
    dense: &[f32],
    k: usize,
    sample: usize,
    rng: &mut impl Rng,
) -> SparseVec {
    let n = dense.len();
    if k == 0 || n == 0 {
        return SparseVec::empty(n);
    }
    if k >= n {
        return topk_sparse(dense, k);
    }
    assert!(sample > 0, "sample size must be positive");
    let sample = sample.min(n);
    // Sample |values| uniformly with replacement (NaN counted as 0, like
    // the exact kernel's comparator).
    let mut mags: Vec<f32> = (0..sample)
        .map(|_| mag(dense[rng.gen_range(0..n)]))
        .collect();
    // Estimated threshold: the value such that a fraction k/n of samples
    // exceeds it — deliberately relaxed by a 4x margin so the candidate
    // pass overshoots k (a slightly-too-large candidate set costs one
    // cheap exact pass over ~4k entries; an undershoot costs a full
    // O(m) rescan).
    let quota = ((k as f64 / n as f64) * sample as f64).ceil() as usize;
    let quota = (quota.saturating_mul(4)).clamp(1, sample);
    // `mag` outputs are never NaN, so this sort is total.
    mags.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(Ordering::Equal));
    let mut thr = mags[quota - 1];
    // Collect candidates, relaxing the threshold a bounded number of
    // times before falling back to the exact kernel (an unbounded relax
    // loop can rescan the full buffer many times and lose to
    // quickselect outright).
    for _ in 0..3 {
        let cand = threshold_sparse(dense, thr);
        if cand.nnz() >= k {
            if cand.nnz() == k {
                return cand;
            }
            // Exact top-k over the (small) candidate set.
            let pairs: Vec<(u32, f32)> = cand.iter().collect();
            let vals: Vec<f32> = pairs.iter().map(|&(_, v)| v).collect();
            let local = topk_indices(&vals, k);
            let selected: Vec<(u32, f32)> = local.iter().map(|&li| pairs[li as usize]).collect();
            return SparseVec::from_pairs(n, selected);
        }
        if thr <= 0.0 {
            break;
        }
        thr *= 0.25;
        if thr < 1e-30 {
            thr = 0.0;
        }
    }
    // Estimate failed (pathological distribution): exact fallback.
    topk_sparse(dense, k)
}

/// Estimates the strict selection threshold for a top-`k`-of-`n` select
/// from `sample` uniform draws of the magnitudes supplied by `value_at`,
/// reusing the `mags` scratch buffer (no allocation at steady state).
///
/// Consumes exactly `sample` RNG draws. Shared by the unfused
/// ([`threshold_estimate_topk_into`]) and fused
/// ([`accumulate_select_compact`]) estimate paths so their thresholds —
/// and therefore their selections — cannot drift apart.
fn estimate_threshold(
    n: usize,
    k: usize,
    sample: usize,
    rng: &mut impl Rng,
    mags: &mut Vec<f32>,
    value_at: impl Fn(usize) -> f32,
) -> f32 {
    mags.clear();
    mags.extend((0..sample).map(|_| mag(value_at(rng.gen_range(0..n)))));
    // Aim the threshold at ~2k candidates: a 2x quota margin makes the
    // strict filter overshoot k with high probability (a slightly large
    // candidate set costs one cheap select; an undershoot costs a full
    // exact rescan).
    let quota = ((k as f64 / n as f64) * sample as f64).ceil() as usize;
    let quota = quota.saturating_mul(2).clamp(1, sample);
    // `mag` outputs are never NaN, so this comparator is total.
    mags.select_nth_unstable_by(quota - 1, |a, b| {
        b.partial_cmp(a).unwrap_or(Ordering::Equal)
    });
    mags[quota - 1]
}

/// Exact top-k via sampled-threshold estimation with an exact-`k` fixup:
/// the fast path of the `ThresholdEstimate` selector.
///
/// A uniform sample of `sample` coordinates estimates the k-th largest
/// magnitude; one single pass collects every coordinate *strictly* above
/// the estimate. If at least `k` candidates survive, the true top-k is
/// necessarily among them (every candidate strictly beats every excluded
/// coordinate), so an exact select over the candidate set — under the
/// same total order as [`topk_indices_into`] — returns a **bitwise
/// identical** result to the exact kernel. If the estimate overshot and
/// fewer than `k` candidates survive, we fall back to the exact kernel.
/// Either way the output equals the exact top-k; only the running time
/// is probabilistic.
///
/// Returns the number of coordinates the final exact select examined:
/// the candidate count on the fast path, `n` on the fallback — the
/// speed-vs-exactness test uses it to show the fast path engages.
pub fn threshold_estimate_topk_into(
    dense: &[f32],
    k: usize,
    sample: usize,
    rng: &mut impl Rng,
    scratch: &mut TopkScratch,
    out: &mut SparseVec,
) -> usize {
    let n = dense.len();
    if k == 0 || n == 0 || k >= n {
        topk_sparse_into(dense, k, scratch, out);
        return n;
    }
    assert!(sample > 0, "sample size must be positive");
    let sample = sample.min(n);
    out.dim = n;
    out.indices.clear();
    out.values.clear();
    let thr = estimate_threshold(n, k, sample, rng, &mut scratch.mags, |i| dense[i]);
    // Single pass: strictly-above-threshold candidates (SIMD compaction;
    // `|v| > thr` and `mag(v) > thr` agree for every thr ≥ 0 because NaN
    // fails both).
    scratch.cand.clear();
    simd::compact_above(dense, thr, 0, &mut scratch.cand);
    let examined = scratch.cand.len();
    if examined < k {
        // Estimate overshot (heavy ties at or below thr): exact fallback.
        topk_sparse_into(dense, k, scratch, out);
        return n;
    }
    if examined > k {
        scratch
            .cand
            .select_nth_unstable_by(k - 1, |&a, &b| tie_cmp(dense, a, b));
        scratch.cand.truncate(k);
    }
    scratch.cand.sort_unstable();
    out.indices.extend_from_slice(&scratch.cand);
    out.values
        .extend(out.indices.iter().map(|&i| dense[i as usize]));
    examined
}

/// Fused residual-accumulate + threshold-estimate top-k extraction: the
/// per-step gradient hot loop in **one memory pass** instead of three.
///
/// Semantically identical — bitwise, including the RNG stream — to the
/// unfused sequence
///
/// 1. `acc[i] += grad[i]` (residual accumulate),
/// 2. [`threshold_estimate_topk_into`] over the accumulated buffer,
/// 3. zeroing the selected coordinates in `acc`,
///
/// but the accumulate, the threshold scan, and the candidate compaction
/// all happen in a single traversal (`gtopk_tensor::simd::
/// accumulate_compact_above`), so the big buffer crosses the memory bus
/// once rather than three times. The threshold is estimated *before*
/// the pass by sampling `mag(acc[i] + grad[i])` — the identical floats
/// (one IEEE rounding per add) the unfused path samples after
/// accumulating, drawn from the identical RNG sequence via the shared
/// [`estimate_threshold`] helper.
///
/// Writes the exact top-`k` of the accumulated buffer into `out` and
/// zeroes the selected coordinates in `acc`. Returns the number of
/// coordinates the final exact select examined, like
/// [`threshold_estimate_topk_into`].
///
/// # Panics
///
/// Panics if `grad.len() != acc.len()`, or if `sample == 0` while the
/// estimate path is taken (`0 < k < n`).
pub fn accumulate_select_compact(
    acc: &mut [f32],
    grad: &[f32],
    k: usize,
    sample: usize,
    rng: &mut impl Rng,
    scratch: &mut TopkScratch,
    out: &mut SparseVec,
) -> usize {
    let n = acc.len();
    assert_eq!(grad.len(), n, "gradient length mismatch");
    if k == 0 || n == 0 || k >= n {
        // Degenerate select: plain accumulate, then the exact kernel
        // (mirrors the unfused path's delegation).
        simd::axpy(acc, grad);
        topk_sparse_into(acc, k, scratch, out);
        for &i in out.indices() {
            acc[i as usize] = 0.0;
        }
        return n;
    }
    assert!(sample > 0, "sample size must be positive");
    let sample = sample.min(n);
    let thr = estimate_threshold(n, k, sample, rng, &mut scratch.mags, |i| acc[i] + grad[i]);
    out.dim = n;
    out.indices.clear();
    out.values.clear();
    // THE fused pass: accumulate, threshold-compare the accumulated
    // value, and emit candidate indices, one traversal.
    scratch.cand.clear();
    simd::accumulate_compact_above(acc, grad, thr, 0, &mut scratch.cand);
    let examined = scratch.cand.len();
    if examined < k {
        // Estimate overshot (heavy ties at or below thr): exact fallback
        // over the already-accumulated buffer.
        topk_sparse_into(acc, k, scratch, out);
        for &i in out.indices() {
            acc[i as usize] = 0.0;
        }
        return n;
    }
    if examined > k {
        scratch
            .cand
            .select_nth_unstable_by(k - 1, |&a, &b| tie_cmp(acc, a, b));
        scratch.cand.truncate(k);
    }
    scratch.cand.sort_unstable();
    out.indices.extend_from_slice(&scratch.cand);
    out.values
        .extend(out.indices.iter().map(|&i| acc[i as usize]));
    for &i in out.indices() {
        acc[i as usize] = 0.0;
    }
    examined
}

/// Allocating wrapper around [`threshold_estimate_topk_into`].
pub fn threshold_estimate_topk_sparse(
    dense: &[f32],
    k: usize,
    sample: usize,
    rng: &mut impl Rng,
) -> SparseVec {
    let mut out = SparseVec::empty(dense.len());
    threshold_estimate_topk_into(dense, k, sample, rng, &mut TopkScratch::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtopk_tensor::parallel::{with_min_chunk, with_thread_limit};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_largest_magnitudes() {
        let v = [0.5, -2.0, 0.1, 1.5, -0.7];
        assert_eq!(topk_indices(&v, 2), vec![1, 3]);
        let sv = topk_sparse(&v, 2);
        assert_eq!(sv.values(), &[-2.0, 1.5]);
    }

    #[test]
    fn k_zero_and_k_oversized() {
        let v = [1.0, 2.0];
        assert!(topk_indices(&v, 0).is_empty());
        assert_eq!(topk_indices(&v, 5), vec![0, 1]);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let v = [1.0, -1.0, 1.0, 1.0];
        assert_eq!(topk_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn nan_and_infinity_are_handled_deterministically() {
        let v = [
            f32::NAN,
            1.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -1.0,
            f32::NAN,
        ];
        // ±inf dominate; NaN sorts as magnitude 0, below every finite value.
        assert_eq!(topk_indices(&v, 2), vec![2, 3]);
        assert_eq!(topk_indices(&v, 3), vec![1, 2, 3]);
        // Top-5 set is {2, 3} (±inf), {1, 4} (finite), then index 0 (the
        // lower-indexed NaN); output is the set sorted ascending.
        assert_eq!(topk_indices(&v, 5), vec![0, 1, 2, 3, 4]);
        // The full selection (k = n) must also terminate and stay sorted —
        // this hangs or panics if the comparator is not a total order.
        assert_eq!(topk_indices(&v, 6), vec![0, 1, 2, 3, 4, 5]);
        // All-NaN input: pure index order.
        let nans = [f32::NAN; 5];
        assert_eq!(topk_indices(&nans, 2), vec![0, 1]);
        let sv = threshold_sparse(&v, 10.0);
        assert_eq!(sv.indices(), &[2, 3]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let mut scratch = TopkScratch::new();
        let mut out = Vec::new();
        let mut sv = SparseVec::empty(0);
        for seed in 0..5u64 {
            let v: Vec<f32> = (0..500)
                .map(|i| (((i as u64 + 1) * (seed + 3) * 2_654_435_761) % 1000) as f32 - 500.0)
                .collect();
            topk_indices_into(&v, 17, &mut scratch, &mut out);
            assert_eq!(out, topk_indices(&v, 17), "seed {seed}");
            topk_sparse_into(&v, 17, &mut scratch, &mut sv);
            assert_eq!(sv, topk_sparse(&v, 17), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_serial_on_forced_chunking() {
        let v: Vec<f32> = (0..10_000)
            .map(|i| ((i * 2_654_435_761u64 as usize) % 997) as f32 - 498.0)
            .collect();
        for k in [1usize, 7, 100, 999] {
            let serial = with_thread_limit(1, || topk_indices(&v, k));
            for threads in [2, 3, 4, 8] {
                let par = with_thread_limit(threads, || with_min_chunk(64, || topk_indices(&v, k)));
                assert_eq!(par, serial, "threads={threads} k={k}");
            }
        }
    }

    #[test]
    fn threshold_filters_strictly() {
        let v = [0.5, -2.0, 2.0, 1.0];
        let sv = threshold_sparse(&v, 1.0);
        assert_eq!(sv.indices(), &[1, 2]);
    }

    #[test]
    fn threshold_parallel_matches_serial() {
        let v: Vec<f32> = (0..5000).map(|i| ((i % 13) as f32) - 6.0).collect();
        let serial = with_thread_limit(1, || threshold_sparse(&v, 3.0));
        let par = with_thread_limit(4, || with_min_chunk(32, || threshold_sparse(&v, 3.0)));
        assert_eq!(par, serial);
    }

    #[test]
    fn sampled_topk_exact_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let dense: Vec<f32> = (0..1000)
            .map(|i| ((i * 7919) % 997) as f32 - 498.0)
            .collect();
        for k in [1usize, 10, 100] {
            let sv = sampled_topk_sparse(&dense, k, 64, &mut rng);
            assert_eq!(sv.nnz(), k, "k={k}");
        }
    }

    #[test]
    fn sampled_topk_overlaps_exact_heavily() {
        let mut rng = StdRng::seed_from_u64(9);
        let dense: Vec<f32> = (0..2000)
            .map(|i| {
                if i % 100 == 0 {
                    50.0 + i as f32
                } else {
                    (i % 7) as f32 * 0.01
                }
            })
            .collect();
        let k = 20;
        let approx = sampled_topk_sparse(&dense, k, 256, &mut rng);
        let exact = topk_sparse(&dense, k);
        let overlap = approx
            .indices()
            .iter()
            .filter(|i| exact.contains(**i))
            .count();
        // With a clear heavy-hitter structure the approximation should agree.
        assert!(overlap >= k * 9 / 10, "overlap {overlap} of {k}");
    }

    #[test]
    fn threshold_estimate_fast_path_engages_and_stays_exact() {
        // 5% heavy hitters: the sampled threshold lands inside the heavy
        // band, so the strict filter examines a few hundred candidates
        // instead of all n — while the output stays bitwise exact.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000usize;
        let dense: Vec<f32> = (0..n)
            .map(|i| {
                if i % 20 == 0 {
                    100.0 + i as f32 * 1e-3
                } else {
                    (i % 7) as f32 * 1e-4
                }
            })
            .collect();
        let mut scratch = TopkScratch::new();
        let mut out = SparseVec::empty(0);
        let k = 150;
        let examined =
            threshold_estimate_topk_into(&dense, k, 512, &mut rng, &mut scratch, &mut out);
        assert_eq!(out, topk_sparse(&dense, k), "must be bitwise exact");
        assert!(
            examined < n / 4,
            "fast path should examine far fewer than n candidates, examined {examined}"
        );
    }

    #[test]
    fn threshold_estimate_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(threshold_estimate_topk_sparse(&[], 3, 8, &mut rng).is_empty());
        let v = [1.0f32, -2.0];
        assert!(threshold_estimate_topk_sparse(&v, 0, 8, &mut rng).is_empty());
        assert_eq!(
            threshold_estimate_topk_sparse(&v, 5, 8, &mut rng),
            topk_sparse(&v, 5)
        );
    }

    #[test]
    fn fused_fast_path_engages_and_stays_exact() {
        // Same heavy-hitter structure as the unfused fast-path test: the
        // fused pass must stay exact while examining far fewer than n.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000usize;
        let acc0: Vec<f32> = (0..n).map(|i| (i % 5) as f32 * 1e-5).collect();
        let grad: Vec<f32> = (0..n)
            .map(|i| {
                if i % 20 == 0 {
                    100.0 + i as f32 * 1e-3
                } else {
                    (i % 7) as f32 * 1e-4
                }
            })
            .collect();
        let mut acc = acc0.clone();
        let mut scratch = TopkScratch::new();
        let mut out = SparseVec::empty(0);
        let k = 150;
        let examined =
            accumulate_select_compact(&mut acc, &grad, k, 512, &mut rng, &mut scratch, &mut out);
        let mut expect_dense = acc0;
        for (a, &g) in expect_dense.iter_mut().zip(grad.iter()) {
            *a += g;
        }
        assert_eq!(out, topk_sparse(&expect_dense, k), "must be bitwise exact");
        assert!(
            examined < n / 4,
            "fast path should examine far fewer than n candidates, examined {examined}"
        );
        // Selected coordinates zeroed, everything else untouched.
        for (i, (&got, &exp)) in acc.iter().zip(expect_dense.iter()).enumerate() {
            let want = if out.contains(i as u32) { 0.0 } else { exp };
            assert_eq!(got.to_bits(), want.to_bits(), "coord {i}");
        }
    }

    proptest! {
        /// The fused accumulate+select+compact kernel is bitwise
        /// identical — extracted vector, buffer state, and RNG
        /// consumption — to the unfused three-pass sequence (accumulate,
        /// estimate-select, zero), for any state, gradient, k, and seed.
        /// Ties, NaNs, and degenerate k included.
        #[test]
        fn prop_fused_bitwise_equals_unfused(
            base in proptest::collection::vec(-6i32..6, 1..300),
            k in 0usize..48,
            seed in 0u64..25,
        ) {
            let acc0: Vec<f32> = base.iter().enumerate()
                .map(|(i, &v)| if i % 17 == 16 { f32::NAN } else { v as f32 * 0.5 })
                .collect();
            let grad: Vec<f32> = base.iter().enumerate()
                .map(|(i, &v)| if i % 13 == 12 { f32::NAN } else { (v as f32 * 0.7).cos() })
                .collect();

            // Unfused reference: accumulate, select, zero.
            let mut acc_ref = acc0.clone();
            for (a, &g) in acc_ref.iter_mut().zip(grad.iter()) { *a += g; }
            let mut rng_ref = StdRng::seed_from_u64(seed);
            let mut out_ref = SparseVec::empty(0);
            threshold_estimate_topk_into(
                &acc_ref, k, 16, &mut rng_ref, &mut TopkScratch::new(), &mut out_ref);
            for &i in out_ref.indices() { acc_ref[i as usize] = 0.0; }

            let mut acc = acc0;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = SparseVec::empty(0);
            accumulate_select_compact(
                &mut acc, &grad, k, 16, &mut rng, &mut TopkScratch::new(), &mut out);

            prop_assert_eq!(out.indices(), out_ref.indices());
            let vb: Vec<u32> = out.values().iter().map(|v| v.to_bits()).collect();
            let rb: Vec<u32> = out_ref.values().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(vb, rb);
            let ab: Vec<u32> = acc.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = acc_ref.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(ab, eb, "buffer state diverged");
            // Both paths must have consumed the identical rng prefix.
            prop_assert_eq!(rng.gen_range(0..u32::MAX), rng_ref.gen_range(0..u32::MAX));
        }

        /// The threshold-estimate selector is bitwise identical to the
        /// exact kernel for any input, k, and rng seed — only its running
        /// time is probabilistic. Ties and NaNs included.
        #[test]
        fn prop_threshold_estimate_bitwise_equals_exact(
            values in proptest::collection::vec(-8i32..8, 1..300),
            k in 0usize..48,
            seed in 0u64..25,
        ) {
            let values: Vec<f32> = values.iter().enumerate()
                .map(|(i, &v)| if i % 13 == 12 { f32::NAN } else { v as f32 })
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let got = threshold_estimate_topk_sparse(&values, k, 16, &mut rng);
            let exact = topk_sparse(&values, k);
            prop_assert_eq!(got.indices(), exact.indices());
            // Compare bit patterns so NaN values also count as equal.
            let gb: Vec<u32> = got.values().iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = exact.values().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, eb);
        }

        /// Exact top-k always matches a full sort of magnitudes.
        #[test]
        fn prop_topk_matches_sort(values in proptest::collection::vec(-100.0f32..100.0, 1..200),
                                  k in 0usize..64) {
            let got = topk_indices(&values, k);
            let mut by_sort: Vec<u32> = (0..values.len() as u32).collect();
            by_sort.sort_by(|&a, &b| tie_cmp(&values, a, b));
            let mut expect: Vec<u32> = by_sort.into_iter().take(k.min(values.len())).collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }

        /// The selected set's minimum magnitude dominates the rejected set's
        /// maximum magnitude.
        #[test]
        fn prop_topk_dominates_rest(values in proptest::collection::vec(-10.0f32..10.0, 1..100),
                                    k in 1usize..32) {
            let sel = topk_indices(&values, k);
            if sel.len() < values.len() {
                let min_sel = sel.iter().map(|&i| values[i as usize].abs())
                    .fold(f32::INFINITY, f32::min);
                let max_rest = (0..values.len() as u32)
                    .filter(|i| sel.binary_search(i).is_err())
                    .map(|i| values[i as usize].abs())
                    .fold(0.0f32, f32::max);
                prop_assert!(min_sel >= max_rest);
            }
        }

        /// Parallel selection is bitwise-identical to serial for any thread
        /// count and chunking, including tie-heavy and NaN-bearing inputs.
        #[test]
        fn prop_parallel_topk_identical_to_serial(
            values in proptest::collection::vec(-8i32..8, 1..400),
            k in 0usize..48,
            threads in 1usize..8,
            min_chunk in 4usize..64,
        ) {
            // Integer-derived values make magnitude ties extremely common;
            // sprinkle NaNs at a fixed stride.
            let values: Vec<f32> = values.iter().enumerate()
                .map(|(i, &v)| if i % 11 == 10 { f32::NAN } else { v as f32 })
                .collect();
            let serial = with_thread_limit(1, || topk_indices(&values, k));
            let par = with_thread_limit(threads, || {
                with_min_chunk(min_chunk, || topk_indices(&values, k))
            });
            prop_assert_eq!(par, serial);
        }

        /// Sampled top-k returns exactly min(k, n) entries and each selected
        /// value matches the dense source.
        #[test]
        fn prop_sampled_topk_consistent(values in proptest::collection::vec(-5.0f32..5.0, 1..300),
                                        k in 0usize..40, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let sv = sampled_topk_sparse(&values, k, 32, &mut rng);
            prop_assert_eq!(sv.nnz(), k.min(values.len()));
            for (i, v) in sv.iter() {
                prop_assert_eq!(v, values[i as usize]);
            }
        }
    }
}
