//! Top-k selection kernels.
//!
//! The paper selects the `k = ρ·m` gradient coordinates of largest absolute
//! value (Algorithm 1, lines 5–7). We provide an exact O(m) expected-time
//! quickselect ([`topk_indices`]), a plain threshold filter
//! ([`threshold_sparse`]), and a sampled-threshold approximation
//! ([`sampled_topk_sparse`]) of the kind used to cut GPU selection cost —
//! the paper's Fig. 11 flags compression time as a real overhead.
//!
//! Ties are broken deterministically towards the lower index so that every
//! worker replica computes an identical selection for identical input.

use crate::SparseVec;
use rand::Rng;
use std::cmp::Ordering;

/// Compares candidate coordinates: larger |value| first, then lower index.
fn tie_cmp(values: &[f32], a: u32, b: u32) -> Ordering {
    let (va, vb) = (values[a as usize].abs(), values[b as usize].abs());
    match vb.partial_cmp(&va) {
        Some(Ordering::Equal) | None => a.cmp(&b),
        Some(ord) => ord,
    }
}

/// Indices of the `k` entries of largest absolute value, ascending order.
///
/// Returns all indices if `k >= values.len()`. Expected O(m) via
/// `select_nth_unstable_by`; deterministic under ties (lower index wins).
///
/// # Examples
///
/// ```
/// use gtopk_sparse::topk_indices;
/// assert_eq!(topk_indices(&[1.0, -9.0, 3.0], 2), vec![1, 2]);
/// ```
pub fn topk_indices(values: &[f32], k: usize) -> Vec<u32> {
    let n = values.len();
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    if k < n {
        idx.select_nth_unstable_by(k - 1, |&a, &b| tie_cmp(values, a, b));
        idx.truncate(k);
    }
    idx.sort_unstable();
    idx
}

/// Sparsifies a dense vector keeping the `k` entries of largest |value|.
///
/// This is exactly `G̃ = G ⊙ Mask` of Algorithm 1.
pub fn topk_sparse(dense: &[f32], k: usize) -> SparseVec {
    let idx = topk_indices(dense, k);
    let values = idx.iter().map(|&i| dense[i as usize]).collect();
    SparseVec::from_sorted(dense.len(), idx, values)
}

/// Sparsifies by keeping every entry with `|value| > thr`.
pub fn threshold_sparse(dense: &[f32], thr: f32) -> SparseVec {
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, &v) in dense.iter().enumerate() {
        if v.abs() > thr {
            indices.push(i as u32);
            values.push(v);
        }
    }
    SparseVec::from_sorted(dense.len(), indices, values)
}

/// Approximate top-k via sampled-threshold estimation, returning exactly
/// `min(k, len)` entries.
///
/// A uniform sample of `sample` coordinates estimates the k-th largest
/// magnitude; a threshold pass collects candidates; the candidate set is
/// then trimmed (exact top-k over candidates) or, if the estimate was too
/// aggressive, the threshold is relaxed geometrically until enough
/// candidates exist. This mirrors the DGC-style sampling trick and is the
/// cheaper of the two selection kernels for large `m` on hardware where a
/// full quickselect is expensive.
///
/// # Panics
///
/// Panics if `sample == 0` while `k > 0` and the input is non-empty.
pub fn sampled_topk_sparse(dense: &[f32], k: usize, sample: usize, rng: &mut impl Rng) -> SparseVec {
    let n = dense.len();
    if k == 0 || n == 0 {
        return SparseVec::empty(n);
    }
    if k >= n {
        return topk_sparse(dense, k);
    }
    assert!(sample > 0, "sample size must be positive");
    let sample = sample.min(n);
    // Sample |values| uniformly with replacement.
    let mut mags: Vec<f32> = (0..sample)
        .map(|_| dense[rng.gen_range(0..n)].abs())
        .collect();
    // Estimated threshold: the value such that a fraction k/n of samples
    // exceeds it — deliberately relaxed by a 4x margin so the candidate
    // pass overshoots k (a slightly-too-large candidate set costs one
    // cheap exact pass over ~4k entries; an undershoot costs a full
    // O(m) rescan).
    let quota = ((k as f64 / n as f64) * sample as f64).ceil() as usize;
    let quota = (quota.saturating_mul(4)).clamp(1, sample);
    mags.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(Ordering::Equal));
    let mut thr = mags[quota - 1];
    // Collect candidates, relaxing the threshold a bounded number of
    // times before falling back to the exact kernel (an unbounded relax
    // loop can rescan the full buffer many times and lose to
    // quickselect outright).
    for _ in 0..3 {
        let cand = threshold_sparse(dense, thr);
        if cand.nnz() >= k {
            if cand.nnz() == k {
                return cand;
            }
            // Exact top-k over the (small) candidate set.
            let pairs: Vec<(u32, f32)> = cand.iter().collect();
            let vals: Vec<f32> = pairs.iter().map(|&(_, v)| v).collect();
            let local = topk_indices(&vals, k);
            let selected: Vec<(u32, f32)> =
                local.iter().map(|&li| pairs[li as usize]).collect();
            return SparseVec::from_pairs(n, selected);
        }
        if thr <= 0.0 {
            break;
        }
        thr *= 0.25;
        if thr < 1e-30 {
            thr = 0.0;
        }
    }
    // Estimate failed (pathological distribution): exact fallback.
    topk_sparse(dense, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_largest_magnitudes() {
        let v = [0.5, -2.0, 0.1, 1.5, -0.7];
        assert_eq!(topk_indices(&v, 2), vec![1, 3]);
        let sv = topk_sparse(&v, 2);
        assert_eq!(sv.values(), &[-2.0, 1.5]);
    }

    #[test]
    fn k_zero_and_k_oversized() {
        let v = [1.0, 2.0];
        assert!(topk_indices(&v, 0).is_empty());
        assert_eq!(topk_indices(&v, 5), vec![0, 1]);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let v = [1.0, -1.0, 1.0, 1.0];
        assert_eq!(topk_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn threshold_filters_strictly() {
        let v = [0.5, -2.0, 2.0, 1.0];
        let sv = threshold_sparse(&v, 1.0);
        assert_eq!(sv.indices(), &[1, 2]);
    }

    #[test]
    fn sampled_topk_exact_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let dense: Vec<f32> = (0..1000).map(|i| ((i * 7919) % 997) as f32 - 498.0).collect();
        for k in [1usize, 10, 100] {
            let sv = sampled_topk_sparse(&dense, k, 64, &mut rng);
            assert_eq!(sv.nnz(), k, "k={k}");
        }
    }

    #[test]
    fn sampled_topk_overlaps_exact_heavily() {
        let mut rng = StdRng::seed_from_u64(9);
        let dense: Vec<f32> = (0..2000)
            .map(|i| if i % 100 == 0 { 50.0 + i as f32 } else { (i % 7) as f32 * 0.01 })
            .collect();
        let k = 20;
        let approx = sampled_topk_sparse(&dense, k, 256, &mut rng);
        let exact = topk_sparse(&dense, k);
        let overlap = approx
            .indices()
            .iter()
            .filter(|i| exact.contains(**i))
            .count();
        // With a clear heavy-hitter structure the approximation should agree.
        assert!(overlap >= k * 9 / 10, "overlap {overlap} of {k}");
    }

    proptest! {
        /// Exact top-k always matches a full sort of magnitudes.
        #[test]
        fn prop_topk_matches_sort(values in proptest::collection::vec(-100.0f32..100.0, 1..200),
                                  k in 0usize..64) {
            let got = topk_indices(&values, k);
            let mut by_sort: Vec<u32> = (0..values.len() as u32).collect();
            by_sort.sort_by(|&a, &b| tie_cmp(&values, a, b));
            let mut expect: Vec<u32> = by_sort.into_iter().take(k.min(values.len())).collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }

        /// The selected set's minimum magnitude dominates the rejected set's
        /// maximum magnitude.
        #[test]
        fn prop_topk_dominates_rest(values in proptest::collection::vec(-10.0f32..10.0, 1..100),
                                    k in 1usize..32) {
            let sel = topk_indices(&values, k);
            if sel.len() < values.len() {
                let min_sel = sel.iter().map(|&i| values[i as usize].abs())
                    .fold(f32::INFINITY, f32::min);
                let max_rest = (0..values.len() as u32)
                    .filter(|i| sel.binary_search(i).is_err())
                    .map(|i| values[i as usize].abs())
                    .fold(0.0f32, f32::max);
                prop_assert!(min_sel >= max_rest);
            }
        }

        /// Sampled top-k returns exactly min(k, n) entries and each selected
        /// value matches the dense source.
        #[test]
        fn prop_sampled_topk_consistent(values in proptest::collection::vec(-5.0f32..5.0, 1..300),
                                        k in 0usize..40, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let sv = sampled_topk_sparse(&values, k, 32, &mut rng);
            prop_assert_eq!(sv.nnz(), k.min(values.len()));
            for (i, v) in sv.iter() {
                prop_assert_eq!(v, values[i as usize]);
            }
        }
    }
}
