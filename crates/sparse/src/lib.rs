//! Sparsification primitives for gTop-k S-SGD.
//!
//! This crate implements the building blocks the paper's algorithms are
//! written in terms of:
//!
//! * [`SparseVec`] — a `[values, indices]` sparse gradient vector, the wire
//!   format every sparsified aggregation algorithm exchanges;
//! * [`topk_sparse`] and friends — Top-k selection over the absolute values
//!   of a dense gradient (paper Algorithm 1, lines 5–7), in an exact
//!   quickselect flavour and a sampled-threshold flavour;
//! * [`topk_merge`] — the paper's **Definition 1** binary operator `⊤`:
//!   merge-add two k-sparse vectors and keep only the k largest magnitudes;
//! * [`Residual`] — the error-feedback accumulator that stores zeroed-out
//!   gradients locally so they eventually contribute to a model update
//!   (Algorithm 4, lines 4, 8 and 10);
//! * [`Mask`] — a sorted index-set used to report *which* coordinates a
//!   global top-k selection kept (Algorithm 3, lines 21–22).
//!
//! # Examples
//!
//! ```
//! use gtopk_sparse::{topk_sparse, topk_merge};
//!
//! let a = topk_sparse(&[0.1, -5.0, 0.2, 3.0], 2);
//! let b = topk_sparse(&[4.0, 4.9, 0.0, -0.1], 2);
//! // a keeps {1, 3}, b keeps {0, 1}; the merged sum is {0: 4.0, 1: -0.1,
//! // 3: 3.0}, whose top-2 magnitudes sit at coordinates 0 and 3.
//! let merged = topk_merge(&a, &b, 2);
//! assert_eq!(merged.indices(), &[0, 3]);
//! ```

#![warn(missing_docs)]

mod mask;
mod merge;
mod residual;
mod topk;
mod vector;
pub mod wire;

pub use mask::Mask;
pub use merge::{
    topk_merge, topk_merge_into, topk_merge_many, topk_merge_split_into, MergeScratch,
};
pub use residual::Residual;
pub use topk::{
    accumulate_select_compact, sampled_topk_sparse, threshold_estimate_topk_into,
    threshold_estimate_topk_sparse, threshold_sparse, topk_indices, topk_indices_into, topk_sparse,
    topk_sparse_into, TopkScratch,
};
pub use vector::SparseVec;
