//! The paper's Definition 1: the binary top-k merge operator `⊤`.
//!
//! `a ⊤ b = mask ⊙ (a + b)` where `mask` keeps the `k` largest magnitudes
//! of the sparse sum. The operator is the reduction step of
//! gTopKAllReduce's binomial tree: each round a worker receives its
//! partner's k-sparse vector, merge-adds it into its own, and re-selects
//! the top-k of the (≤ 2k)-entry result.
//!
//! # Threading & determinism
//!
//! Merge inputs in the tree are tiny (≤ 2k entries), so the merge itself
//! is serial; the top-k re-selection inside it shares the comparator —
//! and therefore the deterministic tie-breaking (larger |value| first,
//! lower index wins, NaN magnitude counts as 0) — with
//! [`crate::topk_indices`]. Determinism here is what keeps every replica's
//! model bitwise identical across ranks.
//!
//! # Scratch reuse
//!
//! The `_into` variants ([`topk_merge_into`], [`topk_merge_split_into`])
//! merge with a two-pointer walk into reusable [`MergeScratch`] buffers and
//! write results into caller-owned [`SparseVec`]s, so the `O(log P)` merge
//! rounds of one all-reduce perform zero steady-state allocation — there is
//! no intermediate `a.add(b)` vector and no dense mask/partition pass.

use crate::topk::{topk_indices_into, TopkScratch};
use crate::SparseVec;

/// Reusable buffers for the `_into` merge kernels.
#[derive(Debug, Clone, Default)]
pub struct MergeScratch {
    /// Merged indices of `a + b` (≤ nnz(a) + nnz(b) entries).
    sum_idx: Vec<u32>,
    /// Values parallel to `sum_idx`.
    sum_val: Vec<f32>,
    /// Selection scratch for the top-k over the merged values.
    select: TopkScratch,
    /// Selected positions into `sum_idx`/`sum_val`, ascending.
    sel: Vec<u32>,
}

impl MergeScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        MergeScratch::default()
    }

    /// Two-pointer merge-add of `a` and `b` into the sum buffers.
    fn merge_sum(&mut self, a: &SparseVec, b: &SparseVec) {
        assert_eq!(a.dim, b.dim, "dimension mismatch in sparse merge");
        self.sum_idx.clear();
        self.sum_val.clear();
        self.sum_idx.reserve(a.nnz() + b.nnz());
        self.sum_val.reserve(a.nnz() + b.nnz());
        let (ai, av) = (&a.indices, &a.values);
        let (bi, bv) = (&b.indices, &b.values);
        let (mut x, mut y) = (0usize, 0usize);
        while x < ai.len() && y < bi.len() {
            let (ia, ib) = (ai[x], bi[y]);
            if ia == ib {
                self.sum_idx.push(ia);
                self.sum_val.push(av[x] + bv[y]);
                x += 1;
                y += 1;
            } else if ia < ib {
                self.sum_idx.push(ia);
                self.sum_val.push(av[x]);
                x += 1;
            } else {
                self.sum_idx.push(ib);
                self.sum_val.push(bv[y]);
                y += 1;
            }
        }
        self.sum_idx.extend_from_slice(&ai[x..]);
        self.sum_val.extend_from_slice(&av[x..]);
        self.sum_idx.extend_from_slice(&bi[y..]);
        self.sum_val.extend_from_slice(&bv[y..]);
    }
}

/// Applies the paper's `⊤` operator into `out`: top-`k` of the sparse sum
/// `a + b`, merging and selecting entirely inside reusable buffers.
///
/// The result has at most `min(k, nnz(a+b))` entries. `out` may alias
/// neither input.
///
/// # Panics
///
/// Panics if `a` and `b` have different dimensions.
pub fn topk_merge_into(
    a: &SparseVec,
    b: &SparseVec,
    k: usize,
    scratch: &mut MergeScratch,
    out: &mut SparseVec,
) {
    scratch.merge_sum(a, b);
    out.dim = a.dim;
    out.indices.clear();
    out.values.clear();
    if scratch.sum_idx.len() <= k {
        out.indices.extend_from_slice(&scratch.sum_idx);
        out.values.extend_from_slice(&scratch.sum_val);
        return;
    }
    topk_indices_into(&scratch.sum_val, k, &mut scratch.select, &mut scratch.sel);
    // `sel` holds ascending positions and positions ascend in coordinate
    // index, so `out.indices` stays strictly ascending.
    for &pos in &scratch.sel {
        out.indices.push(scratch.sum_idx[pos as usize]);
        out.values.push(scratch.sum_val[pos as usize]);
    }
}

/// Like [`topk_merge_into`] but also collects the truncated entries of the
/// sum into `rejected` — the exact values an interior gTopKAllReduce tree
/// merge would silently drop, needed for rejection feedback.
///
/// `kept` receives `a ⊤ b`; `rejected` receives every entry of `a + b`
/// that the selection discarded (empty when `nnz(a+b) <= k`).
///
/// # Panics
///
/// Panics if `a` and `b` have different dimensions.
pub fn topk_merge_split_into(
    a: &SparseVec,
    b: &SparseVec,
    k: usize,
    scratch: &mut MergeScratch,
    kept: &mut SparseVec,
    rejected: &mut SparseVec,
) {
    scratch.merge_sum(a, b);
    kept.dim = a.dim;
    kept.indices.clear();
    kept.values.clear();
    rejected.dim = a.dim;
    rejected.indices.clear();
    rejected.values.clear();
    if scratch.sum_idx.len() <= k {
        kept.indices.extend_from_slice(&scratch.sum_idx);
        kept.values.extend_from_slice(&scratch.sum_val);
        return;
    }
    topk_indices_into(&scratch.sum_val, k, &mut scratch.select, &mut scratch.sel);
    let mut next_sel = 0usize;
    for pos in 0..scratch.sum_idx.len() {
        let selected = scratch.sel.get(next_sel) == Some(&(pos as u32));
        let target = if selected {
            next_sel += 1;
            &mut *kept
        } else {
            &mut *rejected
        };
        target.indices.push(scratch.sum_idx[pos]);
        target.values.push(scratch.sum_val[pos]);
    }
}

/// Applies the paper's `⊤` operator: top-`k` of the sparse sum `a + b`.
///
/// Allocating wrapper around [`topk_merge_into`]; hot paths hold a
/// [`MergeScratch`] and call the `_into` variant instead.
///
/// # Panics
///
/// Panics if `a` and `b` have different dimensions.
///
/// # Examples
///
/// ```
/// use gtopk_sparse::{SparseVec, topk_merge};
/// let a = SparseVec::from_pairs(6, vec![(0, 3.0), (2, -1.0)]);
/// let b = SparseVec::from_pairs(6, vec![(2, -1.5), (5, 0.5)]);
/// let m = topk_merge(&a, &b, 2);
/// assert_eq!(m.indices(), &[0, 2]);
/// assert_eq!(m.values(), &[3.0, -2.5]);
/// ```
pub fn topk_merge(a: &SparseVec, b: &SparseVec, k: usize) -> SparseVec {
    let mut out = SparseVec::empty(a.dim());
    topk_merge_into(a, b, k, &mut MergeScratch::new(), &mut out);
    out
}

/// Reduces many sparse vectors with `⊤` left-to-right.
///
/// `topk_merge_many([g1, g2, g3], k) = (g1 ⊤ g2) ⊤ g3`, matching the order
/// the paper writes `G̃ = G̃₁ ⊤ G̃₂ ⊤ … ⊤ G̃_P`. Returns an empty vector of
/// dimension 0 when `vs` is empty. Ping-pongs two accumulator buffers and
/// one scratch, so the fold never clones an input.
pub fn topk_merge_many(vs: &[SparseVec], k: usize) -> SparseVec {
    let Some(first) = vs.first() else {
        return SparseVec::empty(0);
    };
    let mut scratch = MergeScratch::new();
    let mut acc = SparseVec::empty(first.dim());
    truncate_topk_into(first, k, &mut scratch, &mut acc);
    let mut tmp = SparseVec::empty(first.dim());
    for v in &vs[1..] {
        topk_merge_into(&acc, v, k, &mut scratch, &mut tmp);
        std::mem::swap(&mut acc, &mut tmp);
    }
    acc
}

/// Copies the `k` largest-magnitude entries of `v` into `out` (all of them
/// if `nnz(v) <= k`).
fn truncate_topk_into(v: &SparseVec, k: usize, scratch: &mut MergeScratch, out: &mut SparseVec) {
    out.dim = v.dim;
    out.indices.clear();
    out.values.clear();
    if v.nnz() <= k {
        out.indices.extend_from_slice(&v.indices);
        out.values.extend_from_slice(&v.values);
        return;
    }
    topk_indices_into(&v.values, k, &mut scratch.select, &mut scratch.sel);
    for &pos in &scratch.sel {
        out.indices.push(v.indices[pos as usize]);
        out.values.push(v.values[pos as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk_sparse;
    use proptest::prelude::*;

    #[test]
    fn merge_keeps_global_largest() {
        let a = SparseVec::from_pairs(8, vec![(0, 1.0), (1, 5.0)]);
        let b = SparseVec::from_pairs(8, vec![(2, -4.0), (3, 0.5)]);
        let m = topk_merge(&a, &b, 2);
        assert_eq!(m.indices(), &[1, 2]);
        assert_eq!(m.values(), &[5.0, -4.0]);
    }

    #[test]
    fn merge_sums_overlapping_coordinates_before_selecting() {
        // Two small values on the same coordinate outrank one big value.
        let a = SparseVec::from_pairs(4, vec![(0, 2.0), (1, 1.6)]);
        let b = SparseVec::from_pairs(4, vec![(1, 1.6)]);
        let m = topk_merge(&a, &b, 1);
        assert_eq!(m.indices(), &[1]);
        assert!((m.values()[0] - 3.2).abs() < 1e-6);
    }

    #[test]
    fn merge_many_empty_and_single() {
        assert_eq!(topk_merge_many(&[], 3).dim(), 0);
        let a = SparseVec::from_pairs(4, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        let m = topk_merge_many(std::slice::from_ref(&a), 2);
        assert_eq!(m.indices(), &[1, 2]);
    }

    #[test]
    fn result_never_exceeds_k_entries() {
        let a = SparseVec::from_pairs(10, (0..5).map(|i| (i, 1.0 + i as f32)).collect());
        let b = SparseVec::from_pairs(10, (5..10).map(|i| (i, 1.0 + i as f32)).collect());
        let m = topk_merge(&a, &b, 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.indices(), &[7, 8, 9]);
    }

    #[test]
    fn split_partitions_the_exact_sum() {
        let a = SparseVec::from_pairs(10, vec![(0, 3.0), (2, 1.0), (5, -0.5)]);
        let b = SparseVec::from_pairs(10, vec![(2, 1.5), (7, -4.0)]);
        let mut scratch = MergeScratch::new();
        let mut kept = SparseVec::empty(0);
        let mut rejected = SparseVec::empty(0);
        topk_merge_split_into(&a, &b, 2, &mut scratch, &mut kept, &mut rejected);
        assert_eq!(kept, topk_merge(&a, &b, 2));
        // kept ∪ rejected == a + b exactly, disjointly.
        let sum = a.add(&b);
        assert_eq!(kept.nnz() + rejected.nnz(), sum.nnz());
        for (i, v) in sum.iter() {
            let in_kept = kept.contains(i);
            let in_rej = rejected.contains(i);
            assert!(in_kept ^ in_rej, "coord {i} must be in exactly one side");
            let got = if in_kept {
                kept.get(i)
            } else {
                rejected.get(i)
            };
            assert_eq!(got, v);
        }
    }

    #[test]
    fn split_with_no_truncation_rejects_nothing() {
        let a = SparseVec::from_pairs(6, vec![(1, 1.0)]);
        let b = SparseVec::from_pairs(6, vec![(4, -2.0)]);
        let mut kept = SparseVec::empty(0);
        let mut rejected = SparseVec::from_pairs(6, vec![(0, 9.0)]); // stale content
        topk_merge_split_into(
            &a,
            &b,
            5,
            &mut MergeScratch::new(),
            &mut kept,
            &mut rejected,
        );
        assert_eq!(kept, a.add(&b));
        assert!(rejected.is_empty());
    }

    #[test]
    fn scratch_reuse_across_merges_is_clean() {
        let mut scratch = MergeScratch::new();
        let mut out = SparseVec::empty(0);
        for seed in 0..6u32 {
            let a = SparseVec::from_pairs(
                40,
                (0..10)
                    .map(|i| ((i * 3 + seed) % 40, i as f32 - 4.5))
                    .collect(),
            );
            let b = SparseVec::from_pairs(
                40,
                (0..10)
                    .map(|i| ((i * 7 + seed) % 40, 4.5 - i as f32))
                    .collect(),
            );
            topk_merge_into(&a, &b, 6, &mut scratch, &mut out);
            assert_eq!(out, topk_merge(&a, &b, 6), "seed {seed}");
        }
    }

    proptest! {
        /// ⊤ agrees with "densify, add, exact top-k".
        #[test]
        fn prop_merge_matches_dense_reference(
            pa in proptest::collection::vec((0u32..50, -10.0f32..10.0), 0..20),
            pb in proptest::collection::vec((0u32..50, -10.0f32..10.0), 0..20),
            k in 1usize..12,
        ) {
            let a = SparseVec::from_pairs(50, pa);
            let b = SparseVec::from_pairs(50, pb);
            let m = topk_merge(&a, &b, k);

            let mut dense = a.to_dense();
            for (x, y) in dense.iter_mut().zip(b.to_dense()) { *x += y; }
            let reference = topk_sparse(&dense, k);

            // Compare magnitudes rather than exact index sets: ties between
            // an explicit zero entry and an absent entry may legitimately
            // differ. Selected magnitudes must match as multisets.
            let mut got: Vec<f32> = m.values().iter().map(|v| v.abs()).collect();
            let mut want: Vec<f32> = reference.values().iter().map(|v| v.abs()).collect();
            got.sort_by(|x, y| y.partial_cmp(x).unwrap());
            want.sort_by(|x, y| y.partial_cmp(x).unwrap());
            want.truncate(got.len());
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert!((g - w).abs() < 1e-4, "got {g} want {w}");
            }
        }

        /// ⊤ is commutative in the selected magnitude multiset.
        #[test]
        fn prop_merge_commutative_magnitudes(
            pa in proptest::collection::vec((0u32..30, -5.0f32..5.0), 0..15),
            pb in proptest::collection::vec((0u32..30, -5.0f32..5.0), 0..15),
            k in 1usize..8,
        ) {
            let a = SparseVec::from_pairs(30, pa);
            let b = SparseVec::from_pairs(30, pb);
            let ab = topk_merge(&a, &b, k);
            let ba = topk_merge(&b, &a, k);
            let mut ma: Vec<f32> = ab.values().iter().map(|v| v.abs()).collect();
            let mut mb: Vec<f32> = ba.values().iter().map(|v| v.abs()).collect();
            ma.sort_by(|x, y| x.partial_cmp(y).unwrap());
            mb.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(ma.len(), mb.len());
            for (x, y) in ma.iter().zip(mb.iter()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }

        /// The in-place split merge partitions the exact sum: kept equals
        /// the ⊤ result and kept ⊎ rejected reconstructs a + b.
        #[test]
        fn prop_split_merge_partitions_sum(
            pa in proptest::collection::vec((0u32..40, -6.0f32..6.0), 0..16),
            pb in proptest::collection::vec((0u32..40, -6.0f32..6.0), 0..16),
            k in 1usize..10,
        ) {
            let a = SparseVec::from_pairs(40, pa);
            let b = SparseVec::from_pairs(40, pb);
            let mut kept = SparseVec::empty(0);
            let mut rejected = SparseVec::empty(0);
            topk_merge_split_into(&a, &b, k, &mut MergeScratch::new(),
                                  &mut kept, &mut rejected);
            prop_assert_eq!(&kept, &topk_merge(&a, &b, k));
            let reunion = kept.add(&rejected);
            prop_assert_eq!(reunion, a.add(&b));
        }
    }
}
