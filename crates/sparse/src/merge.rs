//! The paper's Definition 1: the binary top-k merge operator `⊤`.
//!
//! `a ⊤ b = mask ⊙ (a + b)` where `mask` keeps the `k` largest magnitudes
//! of the sparse sum. The operator is the reduction step of
//! gTopKAllReduce's binomial tree: each round a worker receives its
//! partner's k-sparse vector, merge-adds it into its own, and re-selects
//! the top-k of the (≤ 2k)-entry result.

use crate::{topk_indices, SparseVec};

/// Applies the paper's `⊤` operator: top-`k` of the sparse sum `a + b`.
///
/// The result has at most `min(k, nnz(a+b))` entries.
///
/// # Panics
///
/// Panics if `a` and `b` have different dimensions.
///
/// # Examples
///
/// ```
/// use gtopk_sparse::{SparseVec, topk_merge};
/// let a = SparseVec::from_pairs(6, vec![(0, 3.0), (2, -1.0)]);
/// let b = SparseVec::from_pairs(6, vec![(2, -1.5), (5, 0.5)]);
/// let m = topk_merge(&a, &b, 2);
/// assert_eq!(m.indices(), &[0, 2]);
/// assert_eq!(m.values(), &[3.0, -2.5]);
/// ```
pub fn topk_merge(a: &SparseVec, b: &SparseVec, k: usize) -> SparseVec {
    let sum = a.add(b);
    truncate_topk(sum, k)
}

/// Reduces many sparse vectors with `⊤` left-to-right.
///
/// `topk_merge_many([g1, g2, g3], k) = (g1 ⊤ g2) ⊤ g3`, matching the order
/// the paper writes `G̃ = G̃₁ ⊤ G̃₂ ⊤ … ⊤ G̃_P`. Returns an empty vector of
/// dimension 0 when `vs` is empty.
pub fn topk_merge_many(vs: &[SparseVec], k: usize) -> SparseVec {
    let mut iter = vs.iter();
    let first = match iter.next() {
        Some(v) => truncate_topk(v.clone(), k),
        None => return SparseVec::empty(0),
    };
    iter.fold(first, |acc, v| topk_merge(&acc, v, k))
}

/// Keeps only the `k` largest-magnitude entries of a sparse vector.
fn truncate_topk(v: SparseVec, k: usize) -> SparseVec {
    if v.nnz() <= k {
        return v;
    }
    let (dim, indices, values) = v.into_parts();
    let sel = topk_indices(&values, k);
    let mut out_idx = Vec::with_capacity(k);
    let mut out_val = Vec::with_capacity(k);
    for &pos in &sel {
        out_idx.push(indices[pos as usize]);
        out_val.push(values[pos as usize]);
    }
    // `sel` is ascending over positions, and positions are ascending over
    // coordinate indices, so `out_idx` stays sorted.
    SparseVec::from_sorted(dim, out_idx, out_val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk_sparse;
    use proptest::prelude::*;

    #[test]
    fn merge_keeps_global_largest() {
        let a = SparseVec::from_pairs(8, vec![(0, 1.0), (1, 5.0)]);
        let b = SparseVec::from_pairs(8, vec![(2, -4.0), (3, 0.5)]);
        let m = topk_merge(&a, &b, 2);
        assert_eq!(m.indices(), &[1, 2]);
        assert_eq!(m.values(), &[5.0, -4.0]);
    }

    #[test]
    fn merge_sums_overlapping_coordinates_before_selecting() {
        // Two small values on the same coordinate outrank one big value.
        let a = SparseVec::from_pairs(4, vec![(0, 2.0), (1, 1.6)]);
        let b = SparseVec::from_pairs(4, vec![(1, 1.6)]);
        let m = topk_merge(&a, &b, 1);
        assert_eq!(m.indices(), &[1]);
        assert!((m.values()[0] - 3.2).abs() < 1e-6);
    }

    #[test]
    fn merge_many_empty_and_single() {
        assert_eq!(topk_merge_many(&[], 3).dim(), 0);
        let a = SparseVec::from_pairs(4, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);
        let m = topk_merge_many(std::slice::from_ref(&a), 2);
        assert_eq!(m.indices(), &[1, 2]);
    }

    #[test]
    fn result_never_exceeds_k_entries() {
        let a = SparseVec::from_pairs(10, (0..5).map(|i| (i, 1.0 + i as f32)).collect());
        let b = SparseVec::from_pairs(10, (5..10).map(|i| (i, 1.0 + i as f32)).collect());
        let m = topk_merge(&a, &b, 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.indices(), &[7, 8, 9]);
    }

    proptest! {
        /// ⊤ agrees with "densify, add, exact top-k".
        #[test]
        fn prop_merge_matches_dense_reference(
            pa in proptest::collection::vec((0u32..50, -10.0f32..10.0), 0..20),
            pb in proptest::collection::vec((0u32..50, -10.0f32..10.0), 0..20),
            k in 1usize..12,
        ) {
            let a = SparseVec::from_pairs(50, pa);
            let b = SparseVec::from_pairs(50, pb);
            let m = topk_merge(&a, &b, k);

            let mut dense = a.to_dense();
            for (x, y) in dense.iter_mut().zip(b.to_dense()) { *x += y; }
            let reference = topk_sparse(&dense, k);

            // Compare magnitudes rather than exact index sets: ties between
            // an explicit zero entry and an absent entry may legitimately
            // differ. Selected magnitudes must match as multisets.
            let mut got: Vec<f32> = m.values().iter().map(|v| v.abs()).collect();
            let mut want: Vec<f32> = reference.values().iter().map(|v| v.abs()).collect();
            got.sort_by(|x, y| y.partial_cmp(x).unwrap());
            want.sort_by(|x, y| y.partial_cmp(x).unwrap());
            want.truncate(got.len());
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert!((g - w).abs() < 1e-4, "got {g} want {w}");
            }
        }

        /// ⊤ is commutative in the selected magnitude multiset.
        #[test]
        fn prop_merge_commutative_magnitudes(
            pa in proptest::collection::vec((0u32..30, -5.0f32..5.0), 0..15),
            pb in proptest::collection::vec((0u32..30, -5.0f32..5.0), 0..15),
            k in 1usize..8,
        ) {
            let a = SparseVec::from_pairs(30, pa);
            let b = SparseVec::from_pairs(30, pb);
            let ab = topk_merge(&a, &b, k);
            let ba = topk_merge(&b, &a, k);
            let mut ma: Vec<f32> = ab.values().iter().map(|v| v.abs()).collect();
            let mut mb: Vec<f32> = ba.values().iter().map(|v| v.abs()).collect();
            ma.sort_by(|x, y| x.partial_cmp(y).unwrap());
            mb.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(ma.len(), mb.len());
            for (x, y) in ma.iter().zip(mb.iter()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }
    }
}
