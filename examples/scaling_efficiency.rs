//! Scaling-efficiency projection for the paper's full-size DNN workloads
//! on the simulated 1 GbE cluster — the machinery behind Fig. 10 and
//! Table IV, exposed as a small planning tool: "how would my model scale
//! on a low-bandwidth cluster under each aggregation algorithm?"
//!
//! Run: `cargo run --release -p gtopk-core --example scaling_efficiency`

use gtopk_comm::CostModel;
use gtopk_perfmodel::{
    dense_allreduce_ms, gtopk_allreduce_ms, paper_models, scaling_efficiency, topk_allreduce_ms,
    AggregationKind, IterationProfile,
};

fn main() {
    let net = CostModel::gigabit_ethernet();
    println!(
        "network: 1 GbE (alpha = {} ms, beta = {} ms/element)\n",
        net.alpha_ms, net.beta_ms_per_elem
    );
    for model in paper_models() {
        println!(
            "{} — m = {}, k = {} (rho = {}), compute {} ms/iter",
            model.name,
            model.params,
            model.k(),
            model.density,
            model.compute_ms
        );
        println!(
            "  {:>4}  {:>8}  {:>8}  {:>8}",
            "P", "Dense", "Top-k", "gTop-k"
        );
        for p in [4usize, 8, 16, 32, 64] {
            let eff = |kind: AggregationKind| {
                let comm = match kind {
                    AggregationKind::Dense => dense_allreduce_ms(&net, p, model.params),
                    AggregationKind::TopK => topk_allreduce_ms(&net, p, model.k()),
                    AggregationKind::GTopK => gtopk_allreduce_ms(&net, p, model.k()),
                };
                let prof = IterationProfile {
                    compute_ms: model.compute_ms,
                    compression_ms: if kind == AggregationKind::Dense {
                        0.0
                    } else {
                        model.sparsify_ms
                    },
                    communication_ms: comm,
                };
                100.0 * scaling_efficiency(&prof)
            };
            println!(
                "  {:>4}  {:>7.1}%  {:>7.1}%  {:>7.1}%",
                p,
                eff(AggregationKind::Dense),
                eff(AggregationKind::TopK),
                eff(AggregationKind::GTopK)
            );
        }
        println!();
    }
    println!("gTop-k's O(k log P) communication keeps efficiency nearly flat in P.");
}
