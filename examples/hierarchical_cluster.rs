//! Running gTop-k on a rack-structured cluster: fast 10 GbE links inside
//! racks, a slow 1 GbE backbone between them — the kind of heterogeneous
//! low-bandwidth environment the paper targets, extended with per-link
//! cost models.
//!
//! Run: `cargo run --release -p gtopk-core --example hierarchical_cluster`

use gtopk::gtopk_all_reduce;
use gtopk_comm::{collectives, Cluster, CostModel};
use gtopk_sparse::topk_sparse;
use std::sync::Arc;

fn main() {
    let racks = 4usize;
    let per_rack = 4usize;
    let p = racks * per_rack;
    let fast = CostModel::ten_gigabit_ethernet();
    let slow = CostModel::gigabit_ethernet();
    let cluster = Cluster::with_link_costs(
        p,
        slow,
        Arc::new(move |src: usize, dst: usize| {
            if src / per_rack == dst / per_rack {
                fast
            } else {
                slow
            }
        }),
    );
    println!("{racks} racks x {per_rack} nodes; 10 GbE intra-rack, 1 GbE backbone\n");

    let dim = 200_000usize;
    let k = 200usize;
    let results = cluster.run(move |comm| {
        // Every worker contributes a synthetic sparse gradient.
        let g: Vec<f32> = (0..dim)
            .map(|i| ((i * 31 + comm.rank() * 7) % 1001) as f32 / 1000.0 - 0.5)
            .collect();
        let local = topk_sparse(&g, k);
        let (global, _mask) = gtopk_all_reduce(comm, local, k).expect("gtopk");
        collectives::barrier(comm).expect("barrier");
        (global.nnz(), comm.now_ms(), comm.stats().elems_sent)
    });

    let (nnz, t, _) = results[0];
    println!("global top-{k}: {nnz} coordinates selected");
    println!("simulated completion time: {t:.2} ms");
    let max_sent = results.iter().map(|r| r.2).max().unwrap_or(0);
    println!(
        "per-rank traffic: at most {max_sent} elements ({} KiB)",
        max_sent * 4 / 1024
    );
    println!(
        "\nthe binomial tree with contiguous ranks crosses the slow backbone only\n\
         log2({racks}) = {} times per reduction — the O(k log P) structure is\n\
         naturally topology-friendly.",
        (racks as f64).log2() as usize
    );
}
