//! Distributed training of a 2-layer LSTM language model with gTop-k
//! sparsification at ρ = 0.005 — the paper's LSTM-PTB workload (Fig. 7)
//! on the Markov-chain PTB stand-in.
//!
//! Run: `cargo run --release -p gtopk-core --example lstm_language_model`

use gtopk::{train_distributed, Algorithm, DensitySchedule, TrainConfig};
use gtopk_data::MarkovText;
use gtopk_nn::{models, Model};

fn main() {
    let vocab = 16usize;
    let data = MarkovText::new(11, 384, vocab, 12);
    let build = || models::lstm_lm(5, vocab, 12, 24);
    println!(
        "model: 2-layer LSTM LM with {} parameters; corpus: {} windows of {} tokens",
        build().num_params(),
        384,
        12
    );
    println!(
        "memoryless baseline loss: ln({vocab}) = {:.3}\n",
        data.uniform_loss()
    );

    let mut cfg = TrainConfig::convergence(4, 8, 12, 0.5, 0.005);
    cfg.algorithm = Algorithm::GTopK;
    cfg.density = DensitySchedule::paper_warmup(0.005);

    let report = train_distributed(&cfg, build, &data, None);
    for e in &report.epochs {
        println!(
            "epoch {:2}  density {:.4}  loss {:.4}",
            e.epoch, e.density, e.train_loss
        );
    }
    let final_loss = report.final_loss();
    println!(
        "\nfinal loss {final_loss:.4} — {} the memoryless baseline ({:.3})",
        if final_loss < data.uniform_loss() as f64 {
            "below"
        } else {
            "NOT below"
        },
        data.uniform_loss()
    );
}
