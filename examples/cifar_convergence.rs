//! Convergence comparison on the Cifar-10 stand-in: dense vs Top-k vs
//! gTop-k S-SGD training a ResNet-style CNN on 4 simulated workers —
//! the workload family of the paper's Fig. 5.
//!
//! Run: `cargo run --release -p gtopk-core --example cifar_convergence`

use gtopk::{train_distributed, Algorithm, TrainConfig};
use gtopk_data::PatternImages;
use gtopk_nn::{models, Model};

fn main() {
    let data = PatternImages::cifar_like(42, 512);
    let build = || models::resnet20_lite(3, 3, 10);
    println!(
        "model: ResNet-20-lite with {} parameters; dataset: 512 Cifar-like images",
        build().num_params()
    );

    let base = TrainConfig::convergence(4, 8, 12, 0.05, 0.005);
    let mut rows: Vec<(String, Vec<f64>, usize)> = Vec::new();
    for alg in [Algorithm::Dense, Algorithm::TopK, Algorithm::GTopK] {
        let cfg = base.clone().with_algorithm(alg);
        let report = train_distributed(&cfg, build, &data, None);
        rows.push((
            report.algorithm.to_string(),
            report.epochs.iter().map(|e| e.train_loss).collect(),
            report.elems_sent_rank0,
        ));
    }

    println!(
        "\nepoch  {}",
        rows.iter()
            .map(|r| format!("{:>12}", r.0))
            .collect::<String>()
    );
    let epochs = rows[0].1.len();
    for e in 0..epochs {
        print!("{e:5}");
        for (_, losses, _) in &rows {
            print!("  {:>10.4}", losses[e]);
        }
        println!();
    }
    println!("\ncommunication volume (elements sent by rank 0 over the whole run):");
    for (name, _, elems) in &rows {
        println!("  {name:>8}: {elems}");
    }
    println!("\nall three converge; the sparsified runs move orders of magnitude less data.");
}
