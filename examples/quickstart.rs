//! Quickstart: train a small classifier with gTop-k S-SGD on a simulated
//! 4-worker cluster and compare against dense S-SGD.
//!
//! Run: `cargo run --release -p gtopk-core --example quickstart`

use gtopk::{train_distributed, Algorithm, TrainConfig};
use gtopk_data::{Dataset, GaussianMixture, Subset};
use gtopk_nn::models;

fn main() {
    // A deterministic synthetic classification task: 4 Gaussian blobs in
    // 16 dimensions, split 512 train / 128 eval.
    let corpus = GaussianMixture::new(7, 640, 16, 4, 2.5, 0.6);
    let train = Subset::new(&corpus, 0, 512);
    let eval = Subset::new(&corpus, 512, 128);
    println!(
        "dataset: {} train / {} eval items, {} classes",
        train.len(),
        eval.len(),
        train.num_classes()
    );

    // Every worker builds a bit-identical replica from the same seed.
    let build = || models::mlp(42, 16, 32, 4);

    // 4 workers, batch 8 per worker, 10 epochs, the paper's warmup
    // density schedule ending at rho = 0.01.
    let base = TrainConfig::convergence(4, 8, 10, 0.1, 0.01);

    for alg in [Algorithm::Dense, Algorithm::GTopK] {
        let cfg = base.clone().with_algorithm(alg);
        let report = train_distributed(&cfg, build, &train, Some(&eval));
        println!("\n=== {} ===", report.algorithm);
        for e in &report.epochs {
            println!(
                "epoch {:2}  density {:.4}  loss {:.4}  accuracy {:.3}",
                e.epoch,
                e.density,
                e.train_loss,
                e.eval_accuracy.unwrap_or(f64::NAN)
            );
        }
        println!(
            "rank-0 sent {} elements over the simulated network",
            report.elems_sent_rank0
        );
    }
    println!("\ngTop-k reaches dense-level accuracy while communicating far fewer elements.");
}
